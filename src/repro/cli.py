"""Command-line interface: ``python -m repro <command>`` or ``repro-mcp``.

Commands
--------
analyze FILE            detect multi-cycle FF pairs (``.bench`` or ``.v``)
lint FILES...           collect all structural findings (exit 1 on errors)
sweep FILE              constant/duplicate/dead-logic report (+ rewrite)
hazard FILE             detection + static hazard validation
kcycle FILE             k-cycle pair detection for k = 2..max
extended FILE           Condition-2 (observability) extension
equiv GOLDEN REVISED    SAT-miter equivalence of two netlists
table1 / table2 / table3
                        regenerate the paper's tables on the suite
generate DIR            write the synthetic benchmark suite as .bench files
sta FILE                timing relaxation unlocked by multi-cycle pairs
sdc FILE                emit SDC timing exceptions (multicycle/false path)
cache stats|clear       inspect or clear the on-disk artifact store

``--cache-dir DIR`` (or ``REPRO_CACHE_DIR``) activates the on-disk
artifact store: derived artifacts persist across runs and ``analyze
--incremental-from OLD.bench`` re-decides only the FF pairs whose
launch/capture cones an ECO actually changed.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from pathlib import Path

from repro.circuit.bench import dump, load as load_bench
from repro.core.deciders import available_engines
from repro.core.detector import DetectorOptions, detect_multi_cycle_pairs
from repro.core.hazard import check_hazards
from repro.core.sensitization import SensitizationMode
from repro.core.result import Stage
from repro.core.trace import open_trace


def load(path: str):
    """Load a netlist by extension: ``.v`` Verilog, otherwise ``.bench``."""
    if str(path).endswith(".v"):
        from repro.circuit import verilog

        return verilog.load(path)
    return load_bench(path)


def _detector_options(args: argparse.Namespace) -> DetectorOptions:
    return DetectorOptions(
        backtrack_limit=args.backtrack_limit,
        static_learning=args.static_learning,
        implication_db=args.implication_db,
        lint=args.lint,
        include_self_loops=not args.no_self_loops,
        search_engine=args.engine,
        scoap_guidance=args.scoap,
        launch_prefix=not args.no_launch_prefix,
        packed_implication=args.packed_implication,
        sim_seed=args.seed,
        sim_words=args.sim_words,
        sim_plan=args.sim_plan,
        sim_round_batch=args.sim_round_batch,
        workers=args.workers,
        parallel_threshold=args.parallel_threshold,
        chunk_pairs=args.chunk_pairs,
        backplane=getattr(args, "backplane", "auto"),
        hazard_check=getattr(args, "hazard_check", "off"),
        hazard_delays=getattr(args, "hazard_delays", None),
        hazard_conflict_limit=getattr(
            args, "hazard_conflict_limit", 100_000
        ),
        streaming=args.streaming,
        max_pairs_in_flight=args.max_pairs_in_flight,
        cache_dir=getattr(args, "cache_dir", None),
        cache_max_bytes=getattr(args, "cache_max_bytes", 1 << 30),
    )


@contextmanager
def _tracer_for(args: argparse.Namespace):
    """Yield a JSONL tracer when ``--trace FILE`` was given, else None."""
    trace_path = getattr(args, "trace", None)
    if trace_path:
        with open_trace(trace_path) as tracer:
            yield tracer
    else:
        yield None


def _add_detector_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backtrack-limit", type=int, default=50,
                        help="ATPG backtrack limit (paper default: 50)")
    parser.add_argument("--static-learning", action="store_true",
                        help="pre-compute SOCRATES-style global implications")
    parser.add_argument("--implication-db", action="store_true",
                        help="use the compiled global implication database "
                             "(transitively closed, built once per netlist) "
                             "as the deciders' learned table; takes "
                             "precedence over --static-learning")
    parser.add_argument("--lint", default="off",
                        choices=("off", "warn", "strict"),
                        help="structural lint gate before the run: off = "
                             "classic first-error validation, warn = full "
                             "lint rejecting errors, strict = rejecting "
                             "warnings too (verdicts of accepted circuits "
                             "are identical; default: off)")
    parser.add_argument("--no-self-loops", action="store_true",
                        help="skip (FF, FF) self pairs, as [9] did")
    parser.add_argument("--engine", default="dalg",
                        choices=available_engines(),
                        help="pair-decision engine (default: dalg, the "
                             "paper's implication+ATPG flow; the kcycle "
                             "command always uses the implication engine)")
    parser.add_argument("--scoap", action="store_true",
                        help="SCOAP-guided decision ordering (dalg engine)")
    parser.add_argument("--no-launch-prefix", action="store_true",
                        help="re-derive the full case premise per pair "
                             "instead of sharing launch-assumption "
                             "implications across same-source pairs "
                             "(ablation; verdicts are identical)")
    parser.add_argument("--packed-implication", default="auto",
                        choices=("auto", "on", "off"),
                        help="bit-parallel implication pre-pass: settle "
                             "up to 64 (pair, a, b) cases per uint64 "
                             "word in one packed closure before the "
                             "scalar engine; verdicts and pair records "
                             "are identical in every mode (default: "
                             "auto = on for large expansions)")
    parser.add_argument("--seed", type=int, default=2002,
                        help="random-simulation seed (default: 2002)")
    parser.add_argument("--sim-words", type=int, default=4,
                        help="64-bit words per simulation round (default: 4)")
    parser.add_argument("--sim-plan", default="compiled",
                        choices=("compiled", "python"),
                        help="random-simulation evaluator: compiled "
                             "levelized plan (default) or the per-node "
                             "python reference loop (bit-identical)")
    parser.add_argument("--sim-round-batch", type=int, default=8,
                        help="max simulation rounds packed into one wide "
                             "pass (default: 8; 1 disables batching, "
                             "results are identical)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the decision stage "
                             "(default: 1 = serial)")
    parser.add_argument("--parallel-threshold", type=int, default=128,
                        help="fall back to serial when fewer surviving "
                             "pairs than this reach the decision stage "
                             "(default: 128)")
    parser.add_argument("--chunk-pairs", type=int, default=0,
                        help="pairs per chunk dispatched to the worker "
                             "pool (default: 0 = automatic)")
    parser.add_argument("--backplane", default="auto",
                        choices=("auto", "on", "off"),
                        help="zero-copy shared-memory backplane for the "
                             "worker pool: the parent publishes the "
                             "2-frame expansion and derived numpy "
                             "artifacts once and workers attach instead "
                             "of rebuilding; verdicts and pair records "
                             "are identical in every mode (default: "
                             "auto = publish whenever workers spawn)")
    parser.add_argument("--streaming", default="auto",
                        choices=("auto", "on", "off"),
                        help="streaming launch-group execution: folds "
                             "topology/random-sim/decide/hazard one launch "
                             "group at a time with bounded peak memory; "
                             "results are identical to the staged pipeline "
                             "(default: auto = on for large circuits)")
    parser.add_argument("--max-pairs-in-flight", type=int, default=8192,
                        help="streaming only: cap on pairs submitted to "
                             "the decision queue but not yet folded "
                             "(default: 8192)")
    parser.add_argument("--hazard-check", default="off",
                        choices=("off", "ternary", "sensitize",
                                 "cosensitize", "exact"),
                        help="validate detected multi-cycle pairs against "
                             "static hazards (Section 5): bit-parallel "
                             "ternary simulation, a static "
                             "(co-)sensitization path search, or the "
                             "SAT-backed exact three-way classification "
                             "(safe / glitch-possible / glitch-proven); "
                             "flagged pairs are reported, classifications "
                             "are unchanged (default: off)")
    parser.add_argument("--hazard-delays", metavar="FILE", default=None,
                        help="exact mode only: per-gate min/max delay "
                             "sidecar JSON; glitch-proven verdicts whose "
                             "witness pulse cannot form under the given "
                             "intervals are re-marked delay-safe")
    parser.add_argument("--hazard-conflict-limit", type=int,
                        default=100_000,
                        help="exact mode only: SAT conflict budget per "
                             "pair before the verdict degrades to "
                             "glitch-possible (default: 100000)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="content-addressed on-disk artifact store: "
                             "derived artifacts (simulation plans, reach "
                             "matrices, implication DB, pair records) "
                             "persist here across runs and processes "
                             "(default: $REPRO_CACHE_DIR, else disabled; "
                             "verdicts are identical either way)")
    parser.add_argument("--cache-max-bytes", type=int, default=1 << 30,
                        help="artifact-store size bound; least-recently-"
                             "used entries are evicted beyond it "
                             "(default: 1 GiB)")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write per-stage/per-pair JSONL trace events "
                             "to FILE")


def _run_incremental(circuit, options, prior_path, tracer):
    """ECO re-analysis: inherit decide verdicts from a prior run's bundle.

    The prior netlist's pair-record bundle is looked up in the artifact
    store; a missing store or bundle degrades to a full re-decide (with
    a warning) — the merged records are byte-identical either way.
    """
    from repro.core.incremental import incremental_detect, load_result_bundle
    from repro.store.runtime import resolve_cache_dir, store_enabled

    cache_dir = resolve_cache_dir(options.cache_dir)
    bundle = None
    if cache_dir is None:
        print("warning: --incremental-from needs --cache-dir or "
              "REPRO_CACHE_DIR; re-deciding every pair", file=sys.stderr)
    else:
        prior_circuit = load(prior_path)
        with store_enabled(cache_dir, options.cache_max_bytes) as store:
            bundle = load_result_bundle(store, prior_circuit, options)
        if bundle is None:
            print(f"warning: no cached pair records for {prior_path} under "
                  f"these options; re-deciding every pair", file=sys.stderr)
    return incremental_detect(circuit, options, bundle, tracer=tracer)


def cmd_analyze(args: argparse.Namespace) -> int:
    """Detect and summarise multi-cycle FF pairs of one netlist."""
    circuit = load(args.file)
    options = _detector_options(args)
    with _tracer_for(args) as tracer:
        if getattr(args, "incremental_from", None):
            result = _run_incremental(
                circuit, options, args.incremental_from, tracer
            )
        else:
            result = detect_multi_cycle_pairs(circuit, options, tracer=tracer)
    stats = circuit.stats()
    print(f"{circuit.name}: {stats['inputs']} inputs, {stats['dffs']} FFs, "
          f"{stats['gates']} gates")
    print(f"engine:             {result.engine}")
    print(f"connected FF pairs: {result.connected_pairs}")
    print(f"multi-cycle pairs:  {len(result.multi_cycle_pairs)}")
    print(f"undecided pairs:    {len(result.undecided_pairs)}")
    print(f"CPU seconds:        {result.total_seconds:.2f}")
    for stage in Stage:
        s = result.stats[stage]
        print(f"  {stage.value:12s} single={s.single_cycle:6d} "
              f"multi={s.multi_cycle:6d} cpu={s.cpu_seconds:.2f}s")
    cache = result.cache
    if cache is not None:
        print(f"cache:              {cache['hits']} hits, "
              f"{cache['misses']} misses, {cache['stores']} stores, "
              f"{cache['evictions']} evicted, {cache['corrupt']} healed")
    backplane = result.backplane
    if backplane is not None:
        print(f"backplane:          {len(backplane['kinds'])} artifacts, "
              f"{backplane['bytes']} bytes shared, "
              f"{backplane['attached']}/{backplane['workers']} workers "
              f"attached, "
              f"{backplane['worker_store_misses']} worker store misses, "
              f"spawn {backplane['spawn_seconds_max']:.3f}s")
    incremental = result.incremental
    if incremental is not None:
        print(f"incremental:        {incremental['survivors']} survivors, "
              f"{incremental['inherited']} inherited, "
              f"{incremental['re_decided']} re-decided")
    if result.hazard_mode != "off":
        print(f"hazard check:       {result.hazard_mode}: "
              f"{result.hazard_checked} checked, "
              f"{result.hazard_flagged} flagged, "
              f"{len(result.hazard_verified_pairs)} verified")
        exact = result.hazard_exact
        if exact is not None:
            kinds = {"safe": 0, "glitch-possible": 0, "glitch-proven": 0}
            delay_safe = 0
            for verdict in result.hazard_verdicts:
                kinds[verdict.verdict.value] += 1
                if verdict.delay_safe:
                    delay_safe += 1
            line = (f"hazard verdicts:    {kinds['safe']} safe, "
                    f"{kinds['glitch-possible']} glitch-possible, "
                    f"{kinds['glitch-proven']} glitch-proven")
            if delay_safe:
                line += f" ({delay_safe} delay-safe)"
            print(line)
            print(f"hazard exact:       {exact['disagreement']} bound "
                  f"disagreements, resolution fraction "
                  f"{exact['resolution_fraction']:.2f}, "
                  f"{exact['sat_solves']} SAT solves "
                  f"({exact['sat']} sat / {exact['unsat']} unsat / "
                  f"{exact['unknown']} unknown)")
        for pair in result.hazard_flagged_pairs:
            print(f"  hazard-flagged {circuit.names[pair.source]} -> "
                  f"{circuit.names[pair.sink]}")
    db = result.implication_db
    if db:
        print(f"implication DB:     {db['keys']} keys, {db['edges']} edges, "
              f"{db['impossible']} impossible literals, "
              f"built in {db['build_seconds']:.2f}s")
    session = result.decision_session
    if session:
        print(f"decision session:   {session['implications']} implications, "
              f"prefix hits/misses {session['prefix_hits']}/"
              f"{session['prefix_misses']}, "
              f"{session['launch_conflicts']} launch conflicts, "
              f"trail high-water {session['trail_high_water']}")
    packed = result.packed_implication
    if packed:
        print(f"packed implication: {packed['lanes']} lanes packed, "
              f"{packed['resolved']} resolved, "
              f"{packed['fallbacks']} scalar fallbacks, "
              f"{packed['closures']} closures / {packed['visits']} gate "
              f"visits in {packed['us'] / 1000:.1f}ms")
    for disagreement in result.disagreements:
        source, sink = (circuit.names[disagreement.pair.source],
                        circuit.names[disagreement.pair.sink])
        print(f"  DISAGREEMENT {source} -> {sink}: "
              f"{disagreement.primary_engine}={disagreement.primary.value} "
              f"{disagreement.secondary_engine}={disagreement.secondary.value}")
    if args.list_pairs:
        for source, sink in result.multi_cycle_pair_names():
            print(f"  multicycle {source} -> {sink}")
    return 1 if result.disagreements else 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Lint netlist files; exit 1 when the chosen policy rejects any.

    Collects *every* structural finding per file (parse errors included)
    instead of stopping at the first.  ``--strict`` also fails on
    warnings; infos never fail.
    """
    from repro.analysis import lint_file

    exit_code = 0
    for path in args.files:
        report = lint_file(path)
        if not report.diagnostics:
            if not args.quiet:
                print(f"{path}: clean")
            continue
        print(report.format())
        if not report.ok(strict=args.strict):
            exit_code = 1
    return exit_code


def cmd_sweep(args: argparse.Namespace) -> int:
    """Constant/duplicate/dead-logic sweep report; optional rewrite.

    Prints the annotate-only report; with ``-o`` the simplified circuit
    (constants folded, duplicates merged, dead gates dropped, PI/PO/DFF
    interface preserved) is written as ``.bench``.
    """
    from repro.analysis import simplified, sweep

    circuit = load(args.file)
    report = sweep(circuit)
    print(report.format())
    if args.out:
        swept = simplified(circuit)
        dump(swept, args.out)
        removed = circuit.num_nodes - swept.num_nodes
        print(f"wrote {args.out} ({removed} node(s) removed)")
    return 0


def cmd_hazard(args: argparse.Namespace) -> int:
    """Detection plus Section-5 hazard validation and classification."""
    from repro.circuit.techmap import techmap

    circuit = techmap(load(args.file))
    with _tracer_for(args) as tracer:
        result = detect_multi_cycle_pairs(
            circuit, _detector_options(args), tracer=tracer
        )
    print(f"multi-cycle pairs before hazard checking: "
          f"{len(result.multi_cycle_pairs)}")
    for mode in SensitizationMode:
        hazard = check_hazards(circuit, result, mode)
        print(f"after {mode.value:13s}: {len(hazard.verified_pairs)} kept, "
              f"{len(hazard.flagged_pairs)} flagged "
              f"({hazard.total_seconds:.2f}s)")
    from repro.core.hazard import HazardClass, classify_hazards

    classes = classify_hazards(circuit, result)
    print("classification (Section 5.2/5.3):")
    for key in (HazardClass.SAFE, HazardClass.DEPENDENT, HazardClass.HAZARDOUS):
        print(f"  {key:10s}: {len(classes[key])}")
    from repro.analysis.hazard_exact import ExactHazardChecker

    exact = ExactHazardChecker(circuit)
    verdicts = exact.check_pairs(result.multi_cycle_pairs)
    summary = exact.summary()
    print("exact classification (SAT-backed):")
    for kind in ("safe", "glitch-possible", "glitch-proven"):
        hits = [v for v in verdicts if v.verdict.value == kind]
        print(f"  {kind:15s}: {len(hits)}")
        for verdict in hits:
            if kind == "safe":
                continue
            print(f"    {circuit.names[verdict.pair.source]} -> "
                  f"{circuit.names[verdict.pair.sink]} "
                  f"(by {verdict.decided_by})")
    print(f"  resolution fraction: {summary['resolution_fraction']:.2f} "
          f"over {summary['disagreement']} bound disagreement(s)")
    return 0


def cmd_table(args: argparse.Namespace) -> int:
    """Regenerate one of the paper's tables on the benchmark suite."""
    from repro.bench_gen.suite import suite
    from repro.reporting.tables import run_table1, run_table2, run_table3

    circuits = suite(args.profile)
    if args.table == "table1":
        table, _ = run_table1(circuits, sat_mode=args.sat_mode,
                              run_sat=not args.no_sat,
                              engine=args.engine, workers=args.workers)
    elif args.table == "table2":
        table = run_table2(circuits)
    else:
        table = run_table3(circuits)
    print(table.format())
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    """Write the synthetic benchmark suite as .bench files."""
    from repro.bench_gen.suite import suite

    out_dir = Path(args.dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    for circuit in suite(args.profile):
        path = out_dir / f"{circuit.name}.bench"
        dump(circuit, path)
        print(f"wrote {path}")
    return 0


def cmd_kcycle(args: argparse.Namespace) -> int:
    """k-cycle pair detection for k = 2..max_k."""
    from repro.core.kcycle import KCycleDetector

    circuit = load(args.file)
    with _tracer_for(args) as tracer:
        for k in range(2, args.max_k + 1):
            result = KCycleDetector(
                circuit, k, backtrack_limit=args.backtrack_limit,
                sim_words=args.sim_words, sim_seed=args.seed,
                sim_plan=args.sim_plan,
                sim_round_batch=args.sim_round_batch,
                include_self_loops=not args.no_self_loops,
                workers=args.workers,
                parallel_threshold=args.parallel_threshold,
                chunk_pairs=args.chunk_pairs,
                streaming=args.streaming,
                max_pairs_in_flight=args.max_pairs_in_flight,
                tracer=tracer,
            ).run()
            print(f"k={k}: {len(result.k_cycle_pairs)} of "
                  f"{result.connected_pairs} pairs are {k}-cycle "
                  f"({result.total_seconds:.2f}s)")
            if args.list_pairs:
                for source, sink in result.k_cycle_pair_names():
                    print(f"  {source} -> {sink}")
    return 0


def cmd_extended(args: argparse.Namespace) -> int:
    """Condition-2 (observability-based) extension pass."""
    from repro.core.extended import condition2_extension

    circuit = load(args.file)
    with _tracer_for(args) as tracer:
        detection = detect_multi_cycle_pairs(
            circuit, _detector_options(args), tracer=tracer
        )
        extended = condition2_extension(circuit, detection, tracer=tracer)
    print(f"MC-condition multi-cycle pairs: {len(detection.multi_cycle_pairs)}")
    print(f"Condition-2 upgraded pairs:     {len(extended.upgraded_pairs)}")
    print(f"total multi-cycle pairs:        {extended.total_multi_cycle}")
    for source, sink in extended.upgraded_pair_names():
        print(f"  upgraded {source} -> {sink}")
    return 0


def cmd_equiv(args: argparse.Namespace) -> int:
    """SAT-miter equivalence of two netlists; exit 1 on mismatch."""
    from repro.sat.equivalence import check_sequential_equivalence_1step

    golden = load(args.golden)
    revised = load(args.revised)
    result = check_sequential_equivalence_1step(golden, revised)
    if result.equivalent:
        print("EQUIVALENT (outputs and next-state functions match)")
        return 0
    print(f"NOT equivalent: first difference at {result.differing_signal}")
    if result.counterexample:
        assignment = " ".join(
            f"{name}={value}"
            for name, value in sorted(result.counterexample.items())
        )
        print(f"counterexample: {assignment}")
    return 1


def cmd_stats(args: argparse.Namespace) -> int:
    """Structural statistics of a netlist."""
    from repro.circuit.stats import compute_stats, format_stats

    print(format_stats(compute_stats(load(args.file))))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Run every experiment and write one markdown report."""
    from repro.bench_gen.suite import suite
    from repro.reporting.summary import generate_report

    circuits = suite(args.profile)
    text = generate_report(circuits, sat_mode=args.sat_mode,
                           run_sat=not args.no_sat)
    Path(args.out).write_text(text)
    print(f"wrote {args.out}")
    return 0


def cmd_sta(args: argparse.Namespace) -> int:
    """Timing relaxation unlocked by the detected multi-cycle pairs."""
    from repro.sta.constraints import relaxation_report
    from repro.sta.report import format_slack_table, worst_slack_table

    circuit = load(args.file)
    with _tracer_for(args) as tracer:
        detection = detect_multi_cycle_pairs(
            circuit, _detector_options(args), tracer=tracer
        )
    report = relaxation_report(circuit, detection)
    print(f"FF-to-FF paths analysed:     {len(report.pair_timings)}")
    print(f"min period (all 1-cycle):    {report.min_period_baseline:.2f}")
    print(f"min period (MC relaxed):     {report.min_period_relaxed:.2f}")
    print(f"clock speedup:               {report.speedup:.2f}x")
    if args.period is not None:
        lines = worst_slack_table(circuit, detection, args.period,
                                  limit=args.worst)
        print()
        print(format_slack_table(lines, args.period))
    return 0


def cmd_sdc(args: argparse.Namespace) -> int:
    """Emit SDC timing exceptions for detected multi-cycle pairs.

    ``set_multicycle_path -setup k`` for proven multi-cycle pairs,
    ``set_false_path`` for pairs whose implication cases all
    contradicted; with ``--hazard-check`` active, flagged pairs are
    emitted commented-out (relaxing them would be unsafe).
    """
    from repro.sta.constraints import (
        constraints_json,
        format_sdc,
        sdc_constraints,
    )

    circuit = load(args.file)
    with _tracer_for(args) as tracer:
        result = detect_multi_cycle_pairs(
            circuit, _detector_options(args), tracer=tracer
        )
    constraints = sdc_constraints(result, args.multi_cycle_budget)
    text = format_sdc(result, args.multi_cycle_budget, constraints)
    gated = sum(1 for c in constraints if not c.safe)
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote {args.out} ({len(constraints)} constraint(s), "
              f"{gated} hazard-gated)")
    else:
        print(text, end="")
    if args.json:
        Path(args.json).write_text(
            constraints_json(result, args.multi_cycle_budget, constraints)
        )
        print(f"wrote {args.json}")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or clear the on-disk artifact store.

    ``cache stats`` prints per-kind entry counts and byte usage plus the
    store's lifetime layout; ``cache clear`` removes every entry.  The
    directory comes from ``--cache-dir`` or ``REPRO_CACHE_DIR``.
    """
    from repro.store.artifact_store import ArtifactStore
    from repro.store.runtime import resolve_cache_dir

    cache_dir = resolve_cache_dir(args.cache_dir)
    if cache_dir is None:
        print("error: cache needs --cache-dir or REPRO_CACHE_DIR",
              file=sys.stderr)
        return 2
    store = ArtifactStore(cache_dir, max_bytes=args.cache_max_bytes)
    if args.action == "clear":
        removed, freed = store.clear()
        print(f"{cache_dir}: removed {removed} entries, freed {freed} bytes")
        return 0
    usage = store.usage()
    total_entries = sum(row["entries"] for row in usage.values())
    total_bytes = sum(row["bytes"] for row in usage.values())
    print(f"{cache_dir}: {total_entries} entries, {total_bytes} bytes "
          f"(bound {store.max_bytes})")
    for kind in sorted(usage):
        row = usage[kind]
        print(f"  {kind:18s} {row['entries']:6d} entries "
              f"{row['bytes']:12d} bytes")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro-mcp",
        description="Implication-based multi-cycle path detection "
                    "(reproduction of Higuchi, DAC 2002)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="detect multi-cycle FF pairs")
    p.add_argument("file", help=".bench netlist")
    p.add_argument("--list-pairs", action="store_true")
    p.add_argument("--incremental-from", metavar="PRIOR", default=None,
                   help="prior netlist whose cached pair records (from "
                        "the artifact store; needs --cache-dir or "
                        "REPRO_CACHE_DIR) seed incremental ECO "
                        "re-analysis: only pairs whose launch/capture "
                        "cones changed are re-decided, results are "
                        "byte-identical to a full run")
    _add_detector_args(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("lint", help="collect all structural findings of "
                                    "netlist files")
    p.add_argument("files", nargs="+", help=".bench or .v netlists")
    p.add_argument("--strict", action="store_true",
                   help="exit 1 on warnings as well as errors")
    p.add_argument("--quiet", action="store_true",
                   help="print nothing for clean files")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("sweep", help="constant/duplicate/dead-logic sweep "
                                     "report")
    p.add_argument("file", help=".bench or .v netlist")
    p.add_argument("-o", "--out", default=None,
                   help="also write the simplified circuit to this .bench "
                        "file")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("hazard", help="detection + static hazard checks")
    p.add_argument("file", help=".bench netlist")
    _add_detector_args(p)
    p.set_defaults(func=cmd_hazard)

    for name in ("table1", "table2", "table3"):
        p = sub.add_parser(name, help=f"regenerate the paper's {name}")
        p.add_argument("--profile", default="small",
                       choices=("tiny", "small", "medium", "large", "full"))
        if name == "table1":
            p.add_argument("--sat-mode", default="per-pair",
                           choices=("per-pair", "incremental"))
            p.add_argument("--no-sat", action="store_true",
                           help="skip the SAT baseline column")
            p.add_argument("--engine", default="dalg",
                           choices=available_engines(),
                           help="decision engine for the 'ours' column")
            p.add_argument("--workers", type=int, default=1,
                           help="worker processes for the decision stage")
        p.set_defaults(func=cmd_table, table=name)

    p = sub.add_parser("generate", help="write suite circuits as .bench")
    p.add_argument("dir")
    p.add_argument("--profile", default="small",
                   choices=("tiny", "small", "medium", "large", "full"))
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("sta", help="timing relaxation report")
    p.add_argument("file", help=".bench netlist")
    p.add_argument("--period", type=float, default=None,
                   help="also print the worst-slack table at this period")
    p.add_argument("--worst", type=int, default=10,
                   help="rows in the slack table (default 10)")
    _add_detector_args(p)
    p.set_defaults(func=cmd_sta)

    p = sub.add_parser("sdc", help="emit SDC timing exceptions "
                                   "(set_multicycle_path / set_false_path)")
    p.add_argument("file", help=".bench netlist")
    p.add_argument("-o", "--out", default=None,
                   help="write the SDC text here instead of stdout")
    p.add_argument("--json", metavar="FILE", default=None,
                   help="also write the JSON interchange form")
    p.add_argument("--multi-cycle-budget", type=int, default=2,
                   help="setup multiplier for relaxed pairs (default: 2, "
                        "what the MC condition guarantees)")
    _add_detector_args(p)
    p.set_defaults(func=cmd_sdc)

    p = sub.add_parser("kcycle", help="k-cycle pair detection (k = 2..max)")
    p.add_argument("file", help=".bench netlist")
    p.add_argument("--max-k", type=int, default=4)
    p.add_argument("--list-pairs", action="store_true")
    _add_detector_args(p)
    p.set_defaults(func=cmd_kcycle)

    p = sub.add_parser("extended",
                       help="Condition-2 extension (observability based)")
    p.add_argument("file", help=".bench netlist")
    _add_detector_args(p)
    p.set_defaults(func=cmd_extended)

    p = sub.add_parser("equiv", help="SAT miter equivalence of two netlists")
    p.add_argument("golden", help="reference .bench netlist")
    p.add_argument("revised", help="netlist to compare against the reference")
    p.set_defaults(func=cmd_equiv)

    p = sub.add_parser("cache", help="inspect or clear the on-disk "
                                     "artifact store")
    p.add_argument("action", choices=("stats", "clear"),
                   help="stats = per-kind entry/byte usage; clear = "
                        "remove every entry")
    p.add_argument("--cache-dir", metavar="DIR", default=None,
                   help="store directory (default: $REPRO_CACHE_DIR)")
    p.add_argument("--cache-max-bytes", type=int, default=1 << 30,
                   help="size bound used when touching the store "
                        "(default: 1 GiB)")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser("stats", help="structural statistics of a netlist")
    p.add_argument("file", help=".bench or .v netlist")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("report",
                       help="run every experiment, write a markdown report")
    p.add_argument("out", help="output markdown file")
    p.add_argument("--profile", default="tiny",
                   choices=("tiny", "small", "medium", "large", "full"))
    p.add_argument("--sat-mode", default="per-pair",
                   choices=("per-pair", "incremental"))
    p.add_argument("--no-sat", action="store_true")
    p.set_defaults(func=cmd_report)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Netlist problems (malformed files, lint rejections) exit with code 2
    and a one-line ``error:`` message carrying the reader's file/line
    context — they are user errors, not crashes.
    """
    from repro.circuit.netlist import CircuitError

    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except CircuitError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
