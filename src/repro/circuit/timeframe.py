"""Time-frame expansion of a sequential circuit.

Checking the MC condition needs the combinational logic replicated over two
(or, for k-cycle analysis, more) clock cycles — Step 3 of the paper's flow.
:func:`expand` produces a purely combinational :class:`Circuit` in which

* the state at time ``t`` appears as free pseudo-inputs (all states are
  assumed reachable, as in the paper and the SAT-based method [9]),
* each frame ``f`` gets its own copy of the primary inputs and gates,
* the next-state node of frame ``f`` *is* the state node feeding frame
  ``f + 1`` — no aliasing layer is needed.

The returned :class:`TimeFrameExpansion` records, for every flip-flop and
every time point ``t + f``, the expanded node carrying its value:
``ff_at[f][k]`` is the node for the value of the circuit's ``k``-th DFF at
time ``t + f``.  ``ff_at[0]`` are the pseudo-inputs; ``ff_at[f >= 1]`` are
the frame-``f-1`` copies of the D-input drivers.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit


@dataclass
class TimeFrameExpansion:
    """A sequential circuit unrolled into ``frames`` combinational frames."""

    sequential: Circuit
    comb: Circuit
    frames: int
    #: ``ff_at[f][k]``: expanded node holding DFF ``k``'s value at time t+f.
    ff_at: list[list[int]]
    #: ``pi_at[f][k]``: expanded node for primary input ``k`` during frame f.
    pi_at: list[list[int]]
    #: ``po_at[f][k]``: expanded node for primary output ``k`` of frame f.
    po_at: list[list[int]]
    #: ``node_at[f][n]``: expanded id of sequential node ``n`` in frame f
    #: (DFF entries point at the frame's *state* node).
    node_at: list[list[int]]

    def ff_index(self, dff_id: int) -> int:
        """Position of sequential DFF node ``dff_id`` in the ``ff_at`` rows."""
        return self._ff_pos[dff_id]

    def __post_init__(self) -> None:
        self._ff_pos = {d: i for i, d in enumerate(self.sequential.dffs)}


def expand(circuit: Circuit, frames: int = 2) -> TimeFrameExpansion:
    """Unroll ``circuit`` into ``frames`` combinational time frames."""
    if frames < 1:
        raise ValueError("frames must be >= 1")

    comb = Circuit(f"{circuit.name}_x{frames}")
    dffs = circuit.dffs
    pis = circuit.inputs
    order = [
        n
        for n in circuit.topo_order()
        if circuit.types[n] not in (GateType.INPUT, GateType.DFF)
    ]

    # Frame-0 state: one free pseudo-input per flip-flop.
    state_nodes = [
        comb.add_node(GateType.INPUT, (), f"{circuit.names[d]}@0") for d in dffs
    ]
    ff_at = [list(state_nodes)]
    pi_at: list[list[int]] = []
    po_at: list[list[int]] = []
    node_at: list[list[int]] = []

    for frame in range(frames):
        mapping = [-1] * circuit.num_nodes
        for k, dff_id in enumerate(dffs):
            mapping[dff_id] = state_nodes[k]
        frame_pis = []
        for pi in pis:
            node = comb.add_node(GateType.INPUT, (), f"{circuit.names[pi]}@{frame}")
            mapping[pi] = node
            frame_pis.append(node)
        pi_at.append(frame_pis)

        for node_id in order:
            gate_type = circuit.types[node_id]
            fanins = tuple(mapping[f] for f in circuit.fanins[node_id])
            mapping[node_id] = comb.add_node(
                gate_type if gate_type != GateType.OUTPUT else GateType.OUTPUT,
                fanins,
                f"{circuit.names[node_id]}@{frame}",
            )
        node_at.append(mapping)
        po_at.append([mapping[po] for po in circuit.outputs])

        # The copy of each D-input driver is the state entering frame+1.
        state_nodes = [mapping[circuit.next_state_node(d)] for d in dffs]
        ff_at.append(list(state_nodes))

    return TimeFrameExpansion(circuit, comb, frames, ff_at, pi_at, po_at, node_at)


# ----------------------------------------------------------------------
# Expansion cache.
#
# Expanding a large circuit is pure but not free, and nearly every
# analysis (MC detection, k-cycle, the SAT/BDD deciders, hazard checks)
# asks for the *same* expansion of the same circuit.  The cache is keyed
# by circuit identity and invalidated through the circuit's structural
# ``version`` counter; entries die with the circuit (weakref finalizer),
# so holding a suite of circuits never leaks expansions of dead ones.
# ----------------------------------------------------------------------
_EXPANSION_CACHE: dict[
    int, tuple[tuple[int, int], dict[int, TimeFrameExpansion]]
] = {}


def expand_cached(circuit: Circuit, frames: int = 2) -> TimeFrameExpansion:
    """Memoised :func:`expand`; safe to share (expansions are read-only).

    Callers must treat the returned expansion — including its ``comb``
    circuit — as immutable; mutate a copy instead.  Expansions embed
    node names (``name@frame``), so the cache keys on both the
    structural and the metadata version — a rename rebuilds them.
    """
    key = id(circuit)
    version = (circuit.version, circuit.meta_version)
    entry = _EXPANSION_CACHE.get(key)
    if entry is None or entry[0] != version:
        entry = (version, {})
        _EXPANSION_CACHE[key] = entry
        weakref.finalize(circuit, _EXPANSION_CACHE.pop, key, None)
    by_frames = entry[1]
    if frames not in by_frames:
        by_frames[frames] = _expand_or_load(circuit, frames)
    return by_frames[frames]


def _expand_or_load(circuit: Circuit, frames: int) -> TimeFrameExpansion:
    """Expand, going through the artifact store when one is active.

    Expansions are stored in the flat-buffer layout *detached* from the
    sequential circuit (the store address already names it); a warm load
    re-attaches in O(dffs) instead of re-running the O(frames · nodes)
    unroll.  Names are part of the payload (``name@frame``), so the
    address includes the name table.
    """
    from repro.store.runtime import active_store

    store = active_store()
    if store is None:
        return expand(circuit, frames)
    from repro.store.codecs import DetachedExpansion
    from repro.store.flatbuf import FlatBufferError

    address = store.address(
        "expansion",
        circuit.content_key(include_names=True),
        f"frames{frames}",
    )
    cached = store.load("expansion", address)
    if isinstance(cached, DetachedExpansion):
        try:
            attached = cached.attach(circuit)
        except FlatBufferError:
            attached = None  # address collision — rebuild below
        if isinstance(attached, TimeFrameExpansion):
            return attached
    expansion = expand(circuit, frames)
    store.save("expansion", address, expansion)
    return expansion


def clear_expansion_cache() -> None:
    """Drop every cached expansion (mainly for tests and benchmarks)."""
    _EXPANSION_CACHE.clear()
