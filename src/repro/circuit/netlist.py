"""Flat gate-level netlist model for synchronous sequential circuits.

A :class:`Circuit` stores nodes in dense integer-indexed arrays, which the
simulators and the implication engine rely on for speed.  Nodes are created
through :class:`~repro.circuit.builder.CircuitBuilder` or the ``.bench``
reader (:mod:`repro.circuit.bench`); the class itself only offers structural
queries.

Terminology used across the library:

* *source nodes* — primary inputs, flip-flop outputs, constants (level 0 of
  the combinational part),
* *next-state node* of a flip-flop — the node driving its D input,
* *combinational part* — everything except INPUT/DFF/CONST nodes.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

from repro.circuit.gates import (
    COMBINATIONAL_TYPES,
    SOURCE_TYPES,
    GateType,
    fanin_arity_ok,
)


class CircuitError(ValueError):
    """Raised for structurally invalid netlists or malformed queries."""


_T = TypeVar("_T")

# ----------------------------------------------------------------------
# Derived-structure cache.
#
# Several layers build expensive read-only structures from a circuit (the
# compiled simulation plan, time-frame expansions, ...).  The cache below
# is keyed by circuit identity, invalidated through the structural
# ``version`` counter and kept *outside* the instance so that pickling a
# circuit (e.g. shipping it to a worker process) never drags derived
# blobs along.  Entries die with the circuit (weakref finalizer).
# ----------------------------------------------------------------------
_DERIVED_CACHE: dict[int, tuple[int, dict[str, object]]] = {}


def clear_derived_caches() -> None:
    """Drop every cached derived structure (mainly for tests)."""
    _DERIVED_CACHE.clear()


@dataclass(frozen=True)
class Node:
    """Read-only view of one netlist node."""

    id: int
    name: str
    type: GateType
    fanins: tuple[int, ...]


@dataclass
class Circuit:
    """A synchronous sequential circuit over a single clock.

    Attributes
    ----------
    name:
        Circuit name (used in reports and ``.bench`` output).
    types / fanins / names:
        Per-node arrays indexed by node id.
    """

    name: str = "circuit"
    types: list[GateType] = field(default_factory=list)
    fanins: list[tuple[int, ...]] = field(default_factory=list)
    names: list[str] = field(default_factory=list)
    _name_to_id: dict[str, int] = field(default_factory=dict)
    _fanouts: list[list[int]] | None = None
    #: structural revision counter; bumped on every mutation of the node
    #: arrays (``add_node`` / ``set_fanins``) so derived caches (e.g. the
    #: time-frame expansion cache) can detect staleness.  Metadata-only
    #: edits (:meth:`rename_node`) do *not* bump it — they bump
    #: :attr:`_meta_version` instead, so structure-only artifacts stay
    #: alive across renames.
    _version: int = field(default=0, repr=False, compare=False)
    #: metadata revision counter; bumped by name-only edits.  Derived
    #: entries registered with ``scope="names"`` key on both counters.
    _meta_version: int = field(default=0, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Construction primitives (used by the builder and parsers).
    # ------------------------------------------------------------------
    def add_node(
        self, gate_type: GateType, fanins: Sequence[int] = (), name: str | None = None
    ) -> int:
        """Append a node and return its id.

        Fanin ids may be forward references only when added through the
        builder, which patches them before validation; direct users must pass
        already-existing ids.
        """
        node_id = len(self.types)
        if name is None:
            name = f"n{node_id}"
        if name in self._name_to_id:
            raise CircuitError(f"duplicate node name: {name!r}")
        self.types.append(gate_type)
        self.fanins.append(tuple(fanins))
        self.names.append(name)
        self._name_to_id[name] = node_id
        self._fanouts = None
        self._version += 1
        return node_id

    def set_fanins(self, node_id: int, fanins: Sequence[int]) -> None:
        """Replace the fanins of ``node_id`` (used to close DFF feedback)."""
        self.fanins[node_id] = tuple(fanins)
        self._fanouts = None
        self._version += 1

    def rename_node(self, node_id: int, new_name: str) -> None:
        """Rename one node — a metadata-only edit.

        The structural version is untouched, so structure-only derived
        artifacts (compiled simulation plans, reach matrices, the
        implication DB) stay cached; only name-scoped entries (lint and
        sweep reports, expansions, structural hashes) are invalidated.
        """
        old_name = self.names[node_id]
        if new_name == old_name:
            return
        if new_name in self._name_to_id:
            raise CircuitError(f"duplicate node name: {new_name!r}")
        del self._name_to_id[old_name]
        self.names[node_id] = new_name
        self._name_to_id[new_name] = node_id
        self._meta_version += 1
        # Purge stale name-scoped derived entries eagerly (they are keyed
        # by meta version, so they would otherwise linger until the next
        # structural mutation).
        entry = _DERIVED_CACHE.get(id(self))
        if entry is not None and entry[0] == self._version:
            for key in [k for k in entry[1] if isinstance(k, tuple)]:
                del entry[1][key]

    # ------------------------------------------------------------------
    # Basic queries.
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.types)

    @property
    def version(self) -> int:
        """Structural revision; changes when the node arrays are mutated.

        Metadata-only edits (:meth:`rename_node`) do not change it — see
        :attr:`meta_version` for the name-table revision.
        """
        return self._version

    @property
    def meta_version(self) -> int:
        """Metadata revision; changes on name-only edits."""
        return self._meta_version

    def node(self, node_id: int) -> Node:
        return Node(node_id, self.names[node_id], self.types[node_id], self.fanins[node_id])

    def id_of(self, name: str) -> int:
        try:
            return self._name_to_id[name]
        except KeyError:
            raise CircuitError(f"no node named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._name_to_id

    def nodes(self) -> Iterator[Node]:
        for node_id in range(self.num_nodes):
            yield self.node(node_id)

    def ids_of_type(self, gate_type: GateType) -> list[int]:
        return [i for i, t in enumerate(self.types) if t == gate_type]

    @property
    def inputs(self) -> list[int]:
        """Primary input node ids in creation order."""
        return self.ids_of_type(GateType.INPUT)

    @property
    def outputs(self) -> list[int]:
        """Primary output node ids in creation order."""
        return self.ids_of_type(GateType.OUTPUT)

    @property
    def dffs(self) -> list[int]:
        """Flip-flop node ids in creation order."""
        return self.ids_of_type(GateType.DFF)

    @property
    def num_gates(self) -> int:
        """Number of combinational gates (excludes PI/PO/DFF/constants)."""
        excluded = {GateType.INPUT, GateType.OUTPUT, GateType.DFF,
                    GateType.CONST0, GateType.CONST1}
        return sum(1 for t in self.types if t not in excluded)

    def fanouts(self, node_id: int) -> list[int]:
        """Node ids that take ``node_id`` as a fanin (computed lazily)."""
        if self._fanouts is None:
            fanouts: list[list[int]] = [[] for _ in range(self.num_nodes)]
            for sink, fins in enumerate(self.fanins):
                for src in fins:
                    fanouts[src].append(sink)
            self._fanouts = fanouts
        return self._fanouts[node_id]

    def is_source(self, node_id: int) -> bool:
        """True for PI / DFF output / constant nodes."""
        return self.types[node_id] in SOURCE_TYPES

    def derived(
        self,
        key: str,
        build: Callable[["Circuit"], _T],
        scope: str = "structure",
        persist: str | None = None,
    ) -> _T:
        """Version-checked cache for derived read-only structures.

        ``build(self)`` runs at most once per ``(circuit, key)`` until the
        netlist is mutated, after which the whole entry is rebuilt.  The
        returned object must be treated as immutable by every caller —
        the same instance is shared.

        ``scope`` selects the invalidation rule: ``"structure"`` entries
        survive metadata-only edits (renames), ``"names"`` entries are
        additionally keyed by :attr:`meta_version` because the built
        object embeds node names.

        ``persist`` names an artifact kind in the process-shared on-disk
        :class:`~repro.store.ArtifactStore`: when a store is active
        (see :mod:`repro.store.runtime`), an in-memory miss first tries
        the store — addressed by the circuit's :meth:`content_key` — and
        a fresh build is written back.  The object must be pickleable
        and must not reference the circuit.
        """
        if scope not in ("structure", "names"):
            raise ValueError(f"unknown derived scope {scope!r}")
        ident = id(self)
        entry = _DERIVED_CACHE.get(ident)
        if entry is None or entry[0] != self._version:
            entry = (self._version, {})
            _DERIVED_CACHE[ident] = entry
            weakref.finalize(self, _DERIVED_CACHE.pop, ident, None)
        cache = entry[1]
        cache_key: str | tuple[str, int] = (
            key if scope == "structure" else (key, self._meta_version)
        )
        if cache_key not in cache:
            obj: object | None = None
            if persist is not None:
                from repro.store.runtime import active_store

                store = active_store()
                if store is not None:
                    address = store.address(
                        persist,
                        self.content_key(include_names=(scope == "names")),
                    )
                    obj = store.load(persist, address)
                    if obj is None:
                        obj = build(self)
                        store.save(persist, address, obj)
            if obj is None:
                obj = build(self)
            cache[cache_key] = obj
        return cache[cache_key]  # type: ignore[return-value]

    def adopt_derived(
        self, key: str, obj: object, scope: str = "structure"
    ) -> None:
        """Install an externally-built derived structure under ``key``.

        The zero-copy adoption path: a worker that attached shared
        buffers (the store's mmap or the decision pool's shared-memory
        backplane, see :mod:`repro.store.backplane`) registers the
        decoded structure under the same key :meth:`derived` builds it
        for, so every later ``derived(key, ...)`` call returns the
        shared views instead of rebuilding a private copy.  The adopted
        object must satisfy the same contract as a built one: read-only,
        and consistent with the circuit's *current* version — adoption
        is invalidated by mutation exactly like a built entry.
        """
        if scope not in ("structure", "names"):
            raise ValueError(f"unknown derived scope {scope!r}")
        ident = id(self)
        entry = _DERIVED_CACHE.get(ident)
        if entry is None or entry[0] != self._version:
            entry = (self._version, {})
            _DERIVED_CACHE[ident] = entry
            weakref.finalize(self, _DERIVED_CACHE.pop, ident, None)
        cache_key: str | tuple[str, int] = (
            key if scope == "structure" else (key, self._meta_version)
        )
        entry[1][cache_key] = obj

    def structural_hash(self) -> str:
        """Order-invariant digest of the netlist structure and interface.

        See :func:`repro.circuit.structhash.structural_hash` — invariant
        under node reordering and internal-gate renames, sensitive to
        gate/fanin/DFF edits and interface renames.  Cached.
        """
        from repro.circuit.structhash import structural_hash

        return structural_hash(self)

    def content_key(self, include_names: bool = False) -> str:
        """Id-order-sensitive digest of the raw node arrays (cached).

        The on-disk artifact-store address for derived structures that
        reference nodes by id; ``include_names`` folds the name table in
        for artifacts that embed names.
        """
        from repro.circuit.structhash import content_key

        return content_key(self, include_names=include_names)

    def next_state_node(self, dff_id: int) -> int:
        """The node driving the D input of flip-flop ``dff_id``."""
        if self.types[dff_id] != GateType.DFF:
            raise CircuitError(f"node {dff_id} is not a DFF")
        return self.fanins[dff_id][0]

    # ------------------------------------------------------------------
    # Structural traversals.
    # ------------------------------------------------------------------
    def topo_order(self) -> list[int]:
        """Combinational topological order of all nodes.

        Source nodes (PI, DFF outputs, constants) come first; every
        combinational node appears after its fanins.  DFF *D-input edges*
        are not followed, which is what breaks the sequential loops.
        Raises :class:`CircuitError` on a combinational cycle.
        """
        order: list[int] = []
        state = bytearray(self.num_nodes)  # 0 unvisited / 1 on stack / 2 done
        for root in range(self.num_nodes):
            if state[root]:
                continue
            stack: list[tuple[int, int]] = [(root, 0)]
            state[root] = 1
            while stack:
                node_id, fanin_pos = stack[-1]
                follows = (
                    self.fanins[node_id]
                    if self.types[node_id] in COMBINATIONAL_TYPES
                    else ()
                )
                if fanin_pos < len(follows):
                    stack[-1] = (node_id, fanin_pos + 1)
                    child = follows[fanin_pos]
                    if state[child] == 1:
                        raise CircuitError(
                            f"combinational cycle through {self.names[child]!r}"
                        )
                    if state[child] == 0:
                        state[child] = 1
                        stack.append((child, 0))
                else:
                    state[node_id] = 2
                    order.append(node_id)
                    stack.pop()
        return order

    def levels(self) -> list[int]:
        """Combinational level per node (sources at level 0)."""
        level = [0] * self.num_nodes
        for node_id in self.topo_order():
            if self.types[node_id] in COMBINATIONAL_TYPES and self.fanins[node_id]:
                level[node_id] = 1 + max(level[f] for f in self.fanins[node_id])
        return level

    def transitive_fanin(self, roots: Iterable[int]) -> set[int]:
        """All nodes reaching ``roots`` through combinational edges.

        The cone stops at source nodes (they are included, their sequential
        fanin is not followed).
        """
        seen: set[int] = set()
        stack = list(roots)
        while stack:
            node_id = stack.pop()
            if node_id in seen:
                continue
            seen.add(node_id)
            if self.types[node_id] in COMBINATIONAL_TYPES:
                stack.extend(self.fanins[node_id])
        return seen

    def transitive_fanout(self, roots: Iterable[int]) -> set[int]:
        """All nodes reachable from ``roots`` through combinational edges.

        DFF and OUTPUT nodes terminate the traversal (they are included)."""
        seen: set[int] = set()
        stack = list(roots)
        while stack:
            node_id = stack.pop()
            if node_id in seen:
                continue
            seen.add(node_id)
            if self.types[node_id] in (GateType.DFF, GateType.OUTPUT):
                continue
            stack.extend(self.fanouts(node_id))
        return seen

    def copy(self, name: str | None = None) -> "Circuit":
        """Deep copy (fanout cache not shared)."""
        duplicate = Circuit(name or self.name)
        duplicate.types = list(self.types)
        duplicate.fanins = list(self.fanins)
        duplicate.names = list(self.names)
        duplicate._name_to_id = dict(self._name_to_id)
        return duplicate

    def stats(self) -> dict[str, int]:
        """Summary statistics used by reports."""
        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "dffs": len(self.dffs),
            "gates": self.num_gates,
            "nodes": self.num_nodes,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"Circuit({self.name!r}, in={s['inputs']}, out={s['outputs']}, "
            f"ff={s['dffs']}, gates={s['gates']})"
        )


@dataclass(frozen=True)
class Violation:
    """One structural well-formedness violation found by :func:`check`.

    ``code`` is a stable machine-readable tag (``"arity"``,
    ``"multi-driven"``, ``"missing-fanin"``, ``"output-fanin"``,
    ``"comb-cycle"``); ``nodes`` names the offending node(s) by id — for
    ``"comb-cycle"`` it is the full cycle path, first node repeated last.
    """

    code: str
    message: str
    nodes: tuple[int, ...] = ()

    def __str__(self) -> str:
        return self.message


def _comb_cycles(circuit: Circuit) -> list[tuple[int, ...]]:
    """Every combinational cycle, one representative path per SCC.

    Runs an iterative Tarjan SCC pass over the combinational fanin edges
    (DFF D-input edges are not followed, out-of-range fanins skipped); each
    non-trivial SCC — and each self-loop — yields one concrete cycle path
    ``(n0, n1, ..., n0)``.
    """
    num_nodes = circuit.num_nodes

    def comb_fanins(node: int) -> tuple[int, ...]:
        if circuit.types[node] not in COMBINATIONAL_TYPES:
            return ()
        return tuple(
            f for f in circuit.fanins[node] if 0 <= f < num_nodes
        )

    index = [0] * num_nodes
    low = [0] * num_nodes
    on_stack = bytearray(num_nodes)
    visited = bytearray(num_nodes)
    stack: list[int] = []
    sccs: list[list[int]] = []
    counter = 1

    for root in range(num_nodes):
        if visited[root]:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            node, pos = work[-1]
            if pos == 0:
                visited[node] = 1
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = 1
            fanins = comb_fanins(node)
            advanced = False
            while pos < len(fanins):
                child = fanins[pos]
                pos += 1
                if not visited[child]:
                    work[-1] = (node, pos)
                    work.append((child, 0))
                    advanced = True
                    break
                if on_stack[child]:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if low[node] == index[node]:
                component: list[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = 0
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in comb_fanins(node):
                    sccs.append(component)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])

    cycles: list[tuple[int, ...]] = []
    for component in sccs:
        members = set(component)
        start = min(members)
        # Walk fanin edges inside the SCC until a node repeats; strong
        # connectivity guarantees every member has such an edge.
        path = [start]
        seen_at = {start: 0}
        while True:
            here = path[-1]
            nxt = next(f for f in comb_fanins(here) if f in members)
            if nxt in seen_at:
                cycle = path[seen_at[nxt]:] + [nxt]
                cycles.append(tuple(cycle))
                break
            seen_at[nxt] = len(path)
            path.append(nxt)
    cycles.sort(key=lambda c: min(c))
    return cycles


def check(circuit: Circuit) -> list[Violation]:
    """Collect *every* structural violation of ``circuit``.

    Unlike :func:`validate` this never raises: it returns one
    :class:`Violation` per problem — fanin-arity errors (multi-driven
    OUTPUT/DFF nodes reported under their own code), dangling fanin ids,
    OUTPUT nodes used as fanins, and every combinational cycle with its
    full path.  An empty list means the netlist is well formed.
    """
    violations: list[Violation] = []
    for node_id in range(circuit.num_nodes):
        gate_type = circuit.types[node_id]
        fanins = circuit.fanins[node_id]
        if not fanin_arity_ok(gate_type, len(fanins)):
            if gate_type in (GateType.OUTPUT, GateType.DFF) and len(fanins) > 1:
                violations.append(Violation(
                    "multi-driven",
                    f"node {circuit.names[node_id]!r} ({gate_type.name}) has "
                    f"{len(fanins)} fanins (multiple drivers)",
                    (node_id,),
                ))
            else:
                violations.append(Violation(
                    "arity",
                    f"node {circuit.names[node_id]!r} ({gate_type.name}) has "
                    f"{len(fanins)} fanins",
                    (node_id,),
                ))
        for fanin in fanins:
            if not 0 <= fanin < circuit.num_nodes:
                violations.append(Violation(
                    "missing-fanin",
                    f"node {circuit.names[node_id]!r} references missing id {fanin}",
                    (node_id,),
                ))
            elif circuit.types[fanin] == GateType.OUTPUT:
                violations.append(Violation(
                    "output-fanin",
                    f"OUTPUT node {circuit.names[fanin]!r} used as a fanin",
                    (node_id, fanin),
                ))
    for cycle in _comb_cycles(circuit):
        path = " -> ".join(circuit.names[n] for n in cycle)
        violations.append(Violation(
            "comb-cycle",
            f"combinational cycle through {path}",
            cycle,
        ))
    return violations


def validate(circuit: Circuit) -> None:
    """Check structural well-formedness; raise :class:`CircuitError` if bad.

    Verifies fanin arities, fanin id ranges, the absence of combinational
    cycles and that every OUTPUT/DFF has its single driver.  Raising
    wrapper around :func:`check`, which collects *all* violations instead
    of stopping at the first — the diagnostic lint pass
    (:mod:`repro.analysis.lint`) builds on that.
    """
    violations = check(circuit)
    if violations:
        raise CircuitError(str(violations[0]))
