"""Structural Verilog netlist reader/writer (gate-primitive subset).

Covers the flat, technology-independent structural style that EDA tools
exchange:

* one ``module`` with ``input``/``output``/``wire`` declarations,
* gate primitives ``and/nand/or/nor/xor/xnor/not/buf`` with the output as
  first terminal,
* flip-flops as ``dff <name> (Q, D);`` instances (a common academic
  convention; the clock is implicit, matching the library's single-clock
  model),
* 2:1 muxes as ``mux <name> (Y, S, D0, D1);``,
* ``assign y = 1'b0 / 1'b1;`` for constants and ``assign a = b;`` buffers.

The writer emits exactly this subset, so write→read round-trips.
"""

from __future__ import annotations

import io
import re
from pathlib import Path

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, CircuitError, validate

_PRIMITIVES = {
    "and": GateType.AND,
    "nand": GateType.NAND,
    "or": GateType.OR,
    "nor": GateType.NOR,
    "xor": GateType.XOR,
    "xnor": GateType.XNOR,
    "not": GateType.NOT,
    "buf": GateType.BUF,
    "dff": GateType.DFF,
    "mux": GateType.MUX,
}

_TYPE_TO_PRIMITIVE = {v: k for k, v in _PRIMITIVES.items()}

_MODULE_RE = re.compile(r"module\s+(?P<name>\w+)\s*\((?P<ports>[^)]*)\)\s*;")
_DECL_RE = re.compile(r"(?P<kind>input|output|wire)\s+(?P<names>[^;]+);")
_INSTANCE_RE = re.compile(
    r"(?P<prim>\w+)\s+(?P<inst>[\w$.\[\]]+)\s*\((?P<terms>[^)]*)\)\s*;"
)
_ASSIGN_RE = re.compile(r"assign\s+(?P<lhs>[\w$.\[\]]+)\s*=\s*(?P<rhs>[^;]+);")


class VerilogFormatError(CircuitError):
    """Raised on Verilog text outside the supported structural subset."""


def _blank(match: re.Match[str]) -> str:
    """Replace a match with whitespace of identical shape (newlines kept)."""
    return re.sub(r"[^\n]", " ", match.group(0))


def _strip_comments(text: str) -> str:
    # Comments are blanked rather than removed so every character keeps
    # its original offset — error messages can then name source lines.
    text = re.sub(r"/\*.*?\*/", _blank, text, flags=re.S)
    return re.sub(r"//[^\n]*", _blank, text)


def loads(text: str, name: str | None = None, check: bool = True) -> Circuit:
    """Parse structural Verilog into a validated :class:`Circuit`.

    Text outside the supported subset raises :class:`VerilogFormatError`
    (a :class:`~repro.circuit.netlist.CircuitError`) naming the 1-based
    source line.  ``check=False`` skips the final structural validation
    (used by the lint pass to report all problems at once).
    """
    text = _strip_comments(text)

    def line_of(offset: int) -> int:
        return text.count("\n", 0, offset) + 1

    module = _MODULE_RE.search(text)
    if module is None:
        raise VerilogFormatError("no module declaration found")
    body_start = module.end()
    body = text[body_start:]
    end = body.find("endmodule")
    if end == -1:
        raise VerilogFormatError(
            f"line {line_of(module.start())}: missing endmodule"
        )
    body = body[:end]

    inputs: list[str] = []
    outputs: list[tuple[str, int]] = []
    for decl in _DECL_RE.finditer(body):
        decl_line = line_of(body_start + decl.start())
        names = [n.strip() for n in decl.group("names").split(",") if n.strip()]
        if any("[" in n for n in names):
            raise VerilogFormatError(
                f"line {decl_line}: vector ports/wires are not supported"
            )
        if decl.group("kind") == "input":
            inputs.extend(names)
        elif decl.group("kind") == "output":
            outputs.extend((n, decl_line) for n in names)

    # Collect drivers: signal -> (gate_type, operand names, source line).
    # Declarations and assigns are blanked in place (offsets preserved)
    # before the next scan so one construct is never parsed twice.
    drivers: dict[str, tuple[GateType, list[str], int]] = {}
    body_no_decls = _DECL_RE.sub(_blank, body)
    for assign in _ASSIGN_RE.finditer(body_no_decls):
        assign_line = line_of(body_start + assign.start())
        lhs = assign.group("lhs")
        rhs = assign.group("rhs").strip()
        if lhs in drivers:
            raise VerilogFormatError(f"line {assign_line}: {lhs!r} driven twice")
        if rhs in ("1'b0", "1'd0", "0"):
            drivers[lhs] = (GateType.CONST0, [], assign_line)
        elif rhs in ("1'b1", "1'd1", "1"):
            drivers[lhs] = (GateType.CONST1, [], assign_line)
        elif re.fullmatch(r"[\w$.\[\]]+", rhs):
            drivers[lhs] = (GateType.BUF, [rhs], assign_line)
        else:
            raise VerilogFormatError(
                f"line {assign_line}: unsupported assign expression {rhs!r}"
            )

    body_no_assigns = _ASSIGN_RE.sub(_blank, body_no_decls)
    for instance in _INSTANCE_RE.finditer(body_no_assigns):
        primitive = instance.group("prim")
        if primitive in ("module", "endmodule"):
            continue
        instance_line = line_of(body_start + instance.start())
        if primitive not in _PRIMITIVES:
            raise VerilogFormatError(
                f"line {instance_line}: unknown primitive {primitive!r}"
            )
        terms = [t.strip() for t in instance.group("terms").split(",") if t.strip()]
        if len(terms) < 2:
            raise VerilogFormatError(
                f"line {instance_line}: instance {instance.group('inst')!r} "
                f"needs >= 2 terminals"
            )
        out, operands = terms[0], terms[1:]
        if out in drivers:
            raise VerilogFormatError(
                f"line {instance_line}: {out!r} driven twice"
            )
        drivers[out] = (_PRIMITIVES[primitive], operands, instance_line)

    circuit = Circuit(name or module.group("name"))
    ids: dict[str, int] = {}
    for signal in inputs:
        if signal in ids:
            raise VerilogFormatError(f"input {signal!r} declared twice")
        ids[signal] = circuit.add_node(GateType.INPUT, (), signal)
    for signal, (gate_type, _operands, signal_line) in drivers.items():
        if signal in ids:
            raise VerilogFormatError(
                f"line {signal_line}: input {signal!r} cannot be driven"
            )
        ids[signal] = circuit.add_node(gate_type, (), signal)
    for signal, (gate_type, operands, signal_line) in drivers.items():
        try:
            fanins = tuple(ids[o] for o in operands)
        except KeyError as missing:
            raise VerilogFormatError(
                f"line {signal_line}: {signal!r}: undriven signal "
                f"{missing.args[0]!r}"
            ) from None
        circuit.set_fanins(ids[signal], fanins)
    for signal, decl_line in outputs:
        if signal not in ids:
            raise VerilogFormatError(
                f"line {decl_line}: output {signal!r} is never driven"
            )
        circuit.add_node(GateType.OUTPUT, (ids[signal],), f"{signal}__po")
    if check:
        validate(circuit)
    return circuit


def load(path: str | Path, check: bool = True) -> Circuit:
    """Read a structural Verilog file from disk.

    Parse and validation errors are re-raised with the file name
    prefixed, so ``file: line N: ...`` locates the defect exactly.
    """
    path = Path(path)
    try:
        return loads(path.read_text(), name=None, check=check)
    except CircuitError as exc:
        raise VerilogFormatError(f"{path.name}: {exc}") from None


def dumps(circuit: Circuit) -> str:
    """Serialise a circuit as structural Verilog (the subset above)."""
    out = io.StringIO()
    input_names = [circuit.names[n] for n in circuit.inputs]
    # A primary output whose driver is itself an input (or is observed
    # twice) gets an aliasing wire so ports stay unique and well-typed.
    output_names: list[str] = []
    aliases: list[tuple[str, str]] = []
    seen_outputs: set[str] = set()
    for po in circuit.outputs:
        driver = circuit.fanins[po][0]
        driver_name = circuit.names[driver]
        if circuit.types[driver] == GateType.INPUT or driver_name in seen_outputs:
            alias = circuit.names[po]
            aliases.append((alias, driver_name))
            driver_name = alias
        seen_outputs.add(driver_name)
        output_names.append(driver_name)
    ports = ", ".join(input_names + output_names)
    out.write(f"module {circuit.name} ({ports});\n")
    if input_names:
        out.write(f"  input {', '.join(input_names)};\n")
    if output_names:
        out.write(f"  output {', '.join(output_names)};\n")
    wires = [
        circuit.names[n]
        for n in range(circuit.num_nodes)
        if circuit.types[n]
        not in (GateType.INPUT, GateType.OUTPUT)
        and circuit.names[n] not in output_names
    ]
    if wires:
        out.write(f"  wire {', '.join(wires)};\n")
    out.write("\n")
    for alias, driver_name in aliases:
        out.write(f"  assign {alias} = {driver_name};\n")
    instance = 0
    for node in circuit.topo_order():
        gate_type = circuit.types[node]
        node_name = circuit.names[node]
        if gate_type in (GateType.INPUT, GateType.OUTPUT):
            continue
        if gate_type == GateType.CONST0:
            out.write(f"  assign {node_name} = 1'b0;\n")
            continue
        if gate_type == GateType.CONST1:
            out.write(f"  assign {node_name} = 1'b1;\n")
            continue
        operands = ", ".join(circuit.names[f] for f in circuit.fanins[node])
        primitive = _TYPE_TO_PRIMITIVE[gate_type]
        out.write(f"  {primitive} u{instance} ({node_name}, {operands});\n")
        instance += 1
    out.write("endmodule\n")
    return out.getvalue()


def dump(circuit: Circuit, path: str | Path) -> None:
    """Write ``circuit`` to ``path`` as structural Verilog."""
    Path(path).write_text(dumps(circuit))
