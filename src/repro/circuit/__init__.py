"""Subpackage repro.circuit."""
