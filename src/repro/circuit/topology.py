"""Structural analyses: FF-pair connectivity and cone extraction.

Step 1 of the paper's flow drops every FF pair with no combinational path
between them; only *topologically connected* pairs enter the expensive
stages.  :func:`connected_ff_pairs` computes exactly that relation (the
"FF-pair" column of Table 1).

Connectivity is computed with one packed-bitset forward pass instead of a
per-sink set BFS: flip-flop ``k`` seeds bit ``k`` of its own reach row,
and a levelized sweep over the cached CSR views ORs fanin rows into each
combinational node (``words = ceil(num_dffs / 64)`` ``uint64`` words per
node, so one sweep resolves *every* (source, sink) question at once —
the reach row of a sink's D driver *is* its source-FF set).  Each level
is one flat gather of every fanin row plus a segmented
``bitwise_or.reduceat``, which handles ragged fanin counts natively.
The pass is cached per netlist version via :meth:`Circuit.derived`;
:func:`source_ffs_of_sink`, :func:`connected_ff_pairs` and
:func:`pair_count_matrix` all read the same matrix.  The original BFS
survives as :func:`source_ffs_of_sink_bfs` / ``connected_ff_pairs_bfs``
— the reference implementation the bitset pass is tested and benchmarked
against.  Pair order is unchanged: ascending bit index is ascending DFF
node id, and the final ``(source, sink)`` sort reproduces the legacy
order exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from repro.circuit.csr import csr_arrays
from repro.circuit.gates import COMBINATIONAL_TYPES, GateType
from repro.circuit.netlist import Circuit

#: :meth:`Circuit.derived` cache key for the packed FF-reach matrix.
_DERIVED_KEY = "ff-reach"

_COMB_CODES = np.array(sorted(int(t) for t in COMBINATIONAL_TYPES),
                       dtype=np.uint8)


class FFPair(NamedTuple):
    """An ordered pair of flip-flops (source, sink), stored by node id.

    A named tuple rather than a dataclass: circuits produce thousands of
    pairs and the C-level tuple construction keeps the enumeration cost
    proportional to the reachability pass instead of dominating it.
    Ordering, equality and hashing follow the (source, sink) tuple.
    """

    source: int
    sink: int


@dataclass(frozen=True)
class FFReach:
    """Packed FF-reachability of one circuit (see module docstring).

    ``rows`` has one ``words``-word bitset per node: bit ``k`` of
    ``rows[n]`` is set iff flip-flop ``dffs[k]`` has a combinational
    path to node ``n``.  DFF rows carry only their own bit
    (reachability stops at state elements, exactly like
    :meth:`Circuit.transitive_fanin`).
    """

    dffs: tuple[int, ...]
    words: int
    rows: np.ndarray

    def sources_of(self, node: int) -> list[int]:
        """DFF node ids whose bit is set in ``rows[node]``, ascending."""
        bits = np.unpackbits(
            self.rows[node].view(np.uint8), bitorder="little"
        )[: len(self.dffs)]
        return [self.dffs[k] for k in np.nonzero(bits)[0]]


def build_ff_reach(circuit: Circuit) -> FFReach:
    """Uncached :class:`FFReach` construction (one levelized bitset pass).

    Callers normally want :func:`ff_reach`; the raw builder exists for
    benchmarks that time the pass itself.
    """
    csr = csr_arrays(circuit)
    dffs = tuple(circuit.dffs)
    words = max(1, -(-len(dffs) // 64))
    rows = np.zeros((circuit.num_nodes, words), dtype=np.uint64)
    for k, dff in enumerate(dffs):
        rows[dff, k // 64] |= np.uint64(1) << np.uint64(k % 64)

    comb = np.isin(csr.types_np, _COMB_CODES)
    node_ids = np.nonzero(comb)[0].astype(np.intp)
    if len(node_ids):
        levels = csr.levels_np[node_ids]
        order = np.argsort(levels, kind="stable")
        node_ids = node_ids[order]
        levels = levels[order]
        offsets = csr.fanin_offsets_np
        starts = offsets[node_ids]
        counts = offsets[node_ids + 1] - starts
        top = int(levels[-1])
        bounds = np.searchsorted(levels, np.arange(top + 2))
        # Flat fanin node ids of every sorted node, computed once; each
        # level then slices its span out of it.
        excl = np.concatenate(([0], np.cumsum(counts)[:-1]))
        total = int(excl[-1] + counts[-1])
        flat_fanins = csr.fanin_flat_np[
            np.repeat(starts - excl, counts) + np.arange(total)
        ]
        # Sweep level by level: equal-level nodes never read each other,
        # so each level is one flat fanin gather + segmented OR
        # (``reduceat`` handles the ragged fanin counts without padding).
        for level in range(1, top + 1):
            lo, hi = int(bounds[level]), int(bounds[level + 1])
            if hi == lo:
                continue
            base = int(excl[lo])
            stop = int(excl[hi - 1] + counts[hi - 1])
            gathered = rows[flat_fanins[base:stop]]
            rows[node_ids[lo:hi]] = np.bitwise_or.reduceat(
                gathered, excl[lo:hi] - base, axis=0
            )
    rows.flags.writeable = False
    return FFReach(dffs=dffs, words=words, rows=rows)


def ff_reach(circuit: Circuit) -> FFReach:
    """The circuit's packed FF-reach matrix (built once per version)."""
    return circuit.derived(_DERIVED_KEY, build_ff_reach)


def source_ffs_of_sink(circuit: Circuit, sink_dff: int) -> set[int]:
    """Flip-flops with a combinational path into ``sink_dff``'s D input."""
    reach = ff_reach(circuit)
    # A DFF row carries its own bit, so a direct DFF->DFF edge reports
    # the driving flip-flop without special casing.
    return set(reach.sources_of(circuit.next_state_node(sink_dff)))


def source_ffs_of_sink_bfs(circuit: Circuit, sink_dff: int) -> set[int]:
    """Reference BFS implementation of :func:`source_ffs_of_sink`."""
    cone = circuit.transitive_fanin([circuit.next_state_node(sink_dff)])
    return {n for n in cone if circuit.types[n] == GateType.DFF}


def connected_pair_arrays(
    circuit: Circuit, include_self_loops: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """The connected relation as ``(sources, sinks)`` node-id arrays.

    Rows are in the canonical ascending (source, sink) order.  This is
    the array-level core of :func:`connected_ff_pairs` for consumers
    that operate on the relation wholesale and do not need pair objects.
    """
    reach = ff_reach(circuit)
    dffs = reach.dffs
    if not dffs:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    drivers = np.fromiter(
        (circuit.next_state_node(d) for d in dffs), dtype=np.intp,
        count=len(dffs),
    )
    sink_rows = reach.rows[drivers]
    bits = np.unpackbits(
        sink_rows.view(np.uint8), axis=1, bitorder="little"
    )[:, : len(dffs)]
    # Transposed nonzero enumerates (source, sink) in row-major order;
    # ascending bit/DFF-list index is ascending node id, so the result is
    # already in the canonical (source, sink) sort without a sort call.
    source_index, sink_index = np.nonzero(np.ascontiguousarray(bits.T))
    dff_ids = np.asarray(dffs, dtype=np.intp)
    sources = dff_ids[source_index]
    sinks = dff_ids[sink_index]
    if not include_self_loops:
        keep = sources != sinks
        sources, sinks = sources[keep], sinks[keep]
    return sources, sinks


def connected_ff_pairs(
    circuit: Circuit, include_self_loops: bool = True
) -> list[FFPair]:
    """All ordered FF pairs joined by at least one combinational path.

    Pairs are returned sorted by (source, sink) id for determinism.  The
    paper analyses self-loop pairs too (its SAT-based comparison excluded
    them), so they are included by default.
    """
    sources, sinks = connected_pair_arrays(circuit, include_self_loops)
    # ``_make`` binds straight to ``tuple.__new__`` — materialising
    # thousands of pairs this way is measurably cheaper than calling the
    # generated ``FFPair.__new__``.
    return list(map(FFPair._make, zip(sources.tolist(), sinks.tolist())))


def connected_ff_pairs_bfs(
    circuit: Circuit, include_self_loops: bool = True
) -> list[FFPair]:
    """Reference BFS implementation of :func:`connected_ff_pairs`."""
    pairs: list[FFPair] = []
    for sink in circuit.dffs:
        for source in source_ffs_of_sink_bfs(circuit, sink):
            if source == sink and not include_self_loops:
                continue
            pairs.append(FFPair(source, sink))
    pairs.sort(key=lambda p: (p.source, p.sink))
    return pairs


def pair_count_matrix(circuit: Circuit) -> dict[int, set[int]]:
    """Map each sink DFF id to the set of its source DFF ids.

    Reads the same cached reach matrix as :func:`connected_ff_pairs` —
    the per-sink cones are not recomputed.
    """
    return {
        sink: source_ffs_of_sink(circuit, sink) for sink in circuit.dffs
    }


def nodes_reaching(circuit: Circuit, target: int) -> set[int]:
    """Nodes with a combinational path to ``target`` (including it)."""
    return circuit.transitive_fanin([target])


def nodes_reachable_from(circuit: Circuit, source: int) -> set[int]:
    """Nodes combinationally reachable from ``source`` (including it)."""
    return circuit.transitive_fanout([source])


def combinational_depth(circuit: Circuit) -> int:
    """Maximum combinational level in the circuit."""
    levels = circuit.levels()
    return max(levels) if levels else 0
