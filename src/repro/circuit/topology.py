"""Structural analyses: FF-pair connectivity and cone extraction.

Step 1 of the paper's flow drops every FF pair with no combinational path
between them; only *topologically connected* pairs enter the expensive
stages.  :func:`connected_ff_pairs` computes exactly that relation (the
"FF-pair" column of Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit


@dataclass(frozen=True)
class FFPair:
    """An ordered pair of flip-flops (source, sink), stored by node id."""

    source: int
    sink: int


def source_ffs_of_sink(circuit: Circuit, sink_dff: int) -> set[int]:
    """Flip-flops with a combinational path into ``sink_dff``'s D input."""
    cone = circuit.transitive_fanin([circuit.next_state_node(sink_dff)])
    return {n for n in cone if circuit.types[n] == GateType.DFF}

def connected_ff_pairs(
    circuit: Circuit, include_self_loops: bool = True
) -> list[FFPair]:
    """All ordered FF pairs joined by at least one combinational path.

    Pairs are returned sorted by (source, sink) id for determinism.  The
    paper analyses self-loop pairs too (its SAT-based comparison excluded
    them), so they are included by default.
    """
    pairs: list[FFPair] = []
    for sink in circuit.dffs:
        for source in sorted(source_ffs_of_sink(circuit, sink)):
            if source == sink and not include_self_loops:
                continue
            pairs.append(FFPair(source, sink))
    pairs.sort(key=lambda p: (p.source, p.sink))
    return pairs


def pair_count_matrix(circuit: Circuit) -> dict[int, set[int]]:
    """Map each sink DFF id to the set of its source DFF ids."""
    return {sink: source_ffs_of_sink(circuit, sink) for sink in circuit.dffs}


def nodes_reaching(circuit: Circuit, target: int) -> set[int]:
    """Nodes with a combinational path to ``target`` (including it)."""
    return circuit.transitive_fanin([target])


def nodes_reachable_from(circuit: Circuit, source: int) -> set[int]:
    """Nodes combinationally reachable from ``source`` (including it)."""
    return circuit.transitive_fanout([source])


def combinational_depth(circuit: Circuit) -> int:
    """Maximum combinational level in the circuit."""
    levels = circuit.levels()
    return max(levels) if levels else 0
