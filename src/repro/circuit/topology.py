"""Structural analyses: FF-pair connectivity and cone extraction.

Step 1 of the paper's flow drops every FF pair with no combinational path
between them; only *topologically connected* pairs enter the expensive
stages.  :func:`connected_ff_pairs` computes exactly that relation (the
"FF-pair" column of Table 1).

Connectivity is computed with one packed-bitset forward pass instead of a
per-sink set BFS: flip-flop ``k`` seeds bit ``k`` of its own reach row,
and a levelized sweep over the cached CSR views ORs fanin rows into each
combinational node (``words = ceil(num_dffs / 64)`` ``uint64`` words per
node, so one sweep resolves *every* (source, sink) question at once —
the reach row of a sink's D driver *is* its source-FF set).  Each level
is one flat gather of every fanin row plus a segmented
``bitwise_or.reduceat``, which handles ragged fanin counts natively.
The pass is cached per netlist version via :meth:`Circuit.derived`;
:func:`source_ffs_of_sink`, :func:`connected_ff_pairs` and
:func:`pair_count_matrix` all read the same matrix.  The original BFS
survives as :func:`source_ffs_of_sink_bfs` / ``connected_ff_pairs_bfs``
— the reference implementation the bitset pass is tested and benchmarked
against.  Pair order is unchanged: ascending bit index is ascending DFF
node id, and the final ``(source, sink)`` sort reproduces the legacy
order exactly.

Scaling
-------
Two size regimes get dedicated treatment:

* *Tiny* circuits (``num_nodes * num_dffs`` below :data:`BFS_CUTOFF`)
  answer :func:`connected_ff_pairs` / :func:`source_ffs_of_sink` with
  the per-sink BFS outright — the vectorized pass has a fixed numpy
  setup cost that dwarfs such inputs.
* *Large* circuits never materialize the full ``num_nodes × words``
  reach matrix.  :func:`sink_reach` builds only the D-driver rows, and
  above :data:`FULL_REACH_BUDGET_WORDS` it does so in fixed-size source
  blocks: one ``num_nodes × SINK_BLOCK_WORDS`` scratch matrix is seeded
  with a block of source bits, swept, harvested at the driver rows, and
  reused for the next block — peak memory is bounded by the scratch plus
  the ``num_dffs × words`` result regardless of circuit size.
  :func:`iter_launch_groups` then streams the connected relation one
  launching FF at a time (via a blocked bit-transpose of the sink-reach
  matrix) without ever building the full pair list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, NamedTuple

import numpy as np

from repro.circuit.csr import csr_arrays
from repro.circuit.gates import COMBINATIONAL_TYPES, GateType
from repro.circuit.netlist import Circuit

#: :meth:`Circuit.derived` cache key for the packed FF-reach matrix.
_DERIVED_KEY = "ff-reach"
#: cache key for the levelized sweep schedule shared by every reach pass.
_SWEEP_KEY = "reach-sweep-plan"
#: cache key for the sink-major packed source sets (D-driver rows only).
_SINK_KEY = "sink-reach"
#: cache key for the source-major packed sink sets (the transpose).
_LAUNCH_KEY = "launch-reach"

#: ``num_nodes * num_dffs`` products below this answer the pair queries
#: with the per-sink BFS — the vectorized pass pays a fixed numpy setup
#: cost that dominates tiny circuits (the s27-class bench regression).
BFS_CUTOFF = 120_000

#: full per-node reach matrices above this many uint64 words (16 MiB of
#: packed rows) are never materialized; the sink-reach pass goes blocked.
FULL_REACH_BUDGET_WORDS = 1 << 21

#: source words per blocked sink-reach sweep (256 launching FFs at a time).
SINK_BLOCK_WORDS = 4

#: source bits unpacked per blocked bit-transpose step.
_TRANSPOSE_BLOCK_WORDS = 16

_COMB_CODES = np.array(sorted(int(t) for t in COMBINATIONAL_TYPES),
                       dtype=np.uint8)


class FFPair(NamedTuple):
    """An ordered pair of flip-flops (source, sink), stored by node id.

    A named tuple rather than a dataclass: circuits produce thousands of
    pairs and the C-level tuple construction keeps the enumeration cost
    proportional to the reachability pass instead of dominating it.
    Ordering, equality and hashing follow the (source, sink) tuple.
    """

    source: int
    sink: int


class LaunchGroup(NamedTuple):
    """One launching FF and its connected sink FFs.

    ``sinks`` holds ascending DFF node ids; chaining the groups yielded
    by :func:`iter_launch_groups` therefore reproduces the canonical
    :func:`connected_ff_pairs` order pair for pair.
    """

    source: int
    sinks: np.ndarray


# ----------------------------------------------------------------------
# Levelized OR-sweep core (shared by every packed reach pass).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _SweepPlan:
    """Precomputed schedule for the levelized packed-row OR sweep.

    Combinational nodes sorted by level, their flat fanin gather index,
    and the per-level bounds — everything the sweep needs that does not
    depend on the row payload, cached once per netlist version so the
    blocked builders can re-run the sweep per source block cheaply.
    """

    node_ids: np.ndarray
    counts: np.ndarray
    excl: np.ndarray
    flat_fanins: np.ndarray
    bounds: np.ndarray
    top: int


def _build_sweep_plan(circuit: Circuit) -> _SweepPlan:
    csr = csr_arrays(circuit)
    comb = np.isin(csr.types_np, _COMB_CODES)
    node_ids = np.nonzero(comb)[0].astype(np.intp)
    if not len(node_ids):
        empty = np.empty(0, dtype=np.intp)
        return _SweepPlan(empty, empty, empty, empty,
                          np.zeros(2, dtype=np.intp), 0)
    levels = csr.levels_np[node_ids]
    order = np.argsort(levels, kind="stable")
    node_ids = node_ids[order]
    levels = levels[order]
    offsets = csr.fanin_offsets_np
    starts = offsets[node_ids]
    counts = offsets[node_ids + 1] - starts
    top = int(levels[-1])
    bounds = np.searchsorted(levels, np.arange(top + 2))
    # Flat fanin node ids of every sorted node, computed once; each
    # level then slices its span out of it.
    excl = np.concatenate(([0], np.cumsum(counts)[:-1]))
    total = int(excl[-1] + counts[-1])
    flat_fanins = csr.fanin_flat_np[
        np.repeat(starts - excl, counts) + np.arange(total)
    ]
    return _SweepPlan(node_ids, counts, excl, flat_fanins, bounds, top)


def _sweep_plan(circuit: Circuit) -> _SweepPlan:
    return circuit.derived(_SWEEP_KEY, _build_sweep_plan)


def _or_sweep(rows: np.ndarray, plan: _SweepPlan) -> None:
    """Propagate packed rows through the circuit, level by level, in place.

    Equal-level nodes never read each other, so each level is one flat
    fanin gather plus a segmented OR (``reduceat`` handles the ragged
    fanin counts without padding).
    """
    for level in range(1, plan.top + 1):
        lo, hi = int(plan.bounds[level]), int(plan.bounds[level + 1])
        if hi == lo:
            continue
        base = int(plan.excl[lo])
        stop = int(plan.excl[hi - 1] + plan.counts[hi - 1])
        gathered = rows[plan.flat_fanins[base:stop]]
        rows[plan.node_ids[lo:hi]] = np.bitwise_or.reduceat(
            gathered, plan.excl[lo:hi] - base, axis=0
        )


# ----------------------------------------------------------------------
# Full per-node reach matrix (small/medium circuits and cone queries).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FFReach:
    """Packed FF-reachability of one circuit (see module docstring).

    ``rows`` has one ``words``-word bitset per node: bit ``k`` of
    ``rows[n]`` is set iff flip-flop ``dffs[k]`` has a combinational
    path to node ``n``.  DFF rows carry only their own bit
    (reachability stops at state elements, exactly like
    :meth:`Circuit.transitive_fanin`).
    """

    dffs: tuple[int, ...]
    words: int
    rows: np.ndarray

    def sources_of(self, node: int) -> list[int]:
        """DFF node ids whose bit is set in ``rows[node]``, ascending."""
        bits = np.unpackbits(
            self.rows[node].view(np.uint8), bitorder="little"
        )[: len(self.dffs)]
        return [self.dffs[k] for k in np.nonzero(bits)[0]]


def build_ff_reach(circuit: Circuit) -> FFReach:
    """Uncached :class:`FFReach` construction (one levelized bitset pass).

    Callers normally want :func:`ff_reach`; the raw builder exists for
    benchmarks that time the pass itself.
    """
    dffs = tuple(circuit.dffs)
    words = max(1, -(-len(dffs) // 64))
    rows = np.zeros((circuit.num_nodes, words), dtype=np.uint64)
    for k, dff in enumerate(dffs):
        rows[dff, k // 64] |= np.uint64(1) << np.uint64(k % 64)
    _or_sweep(rows, _sweep_plan(circuit))
    rows.flags.writeable = False
    return FFReach(dffs=dffs, words=words, rows=rows)


def ff_reach(circuit: Circuit) -> FFReach:
    """The circuit's packed FF-reach matrix (built once per version).

    Persisted to the on-disk artifact store when one is active — the
    rows are pure ``uint64`` words keyed by node id, so the matrix is
    shared by content address across processes.
    """
    return circuit.derived(_DERIVED_KEY, build_ff_reach, persist="ff-reach")


# ----------------------------------------------------------------------
# Sink-reach: only the D-driver rows, blocked above a size threshold.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SinkReach:
    """Packed source sets of every sink DFF's next-state cone.

    Bit ``k`` of ``rows[j]`` is set iff flip-flop ``dffs[k]`` reaches
    the D input of ``dffs[j]`` — exactly ``ff_reach(circuit).rows``
    restricted to the D-driver rows, but buildable without the full
    per-node matrix.  ``blocked`` records which builder produced it.
    """

    dffs: tuple[int, ...]
    words: int
    rows: np.ndarray
    blocked: bool


def build_sink_reach(
    circuit: Circuit, block_words: int = SINK_BLOCK_WORDS
) -> SinkReach:
    """Uncached :class:`SinkReach` construction.

    Small circuits slice the (cached) full reach matrix.  Above
    :data:`FULL_REACH_BUDGET_WORDS` the pass runs in source blocks of
    ``block_words * 64`` flip-flops: one ``num_nodes × block_words``
    scratch matrix is seeded, swept and harvested per block, then
    reused — peak memory stays bounded by the scratch plus the
    ``num_dffs × words`` result however large the circuit grows.
    """
    dffs = tuple(circuit.dffs)
    words = max(1, -(-len(dffs) // 64))
    if not dffs:
        rows = np.zeros((0, words), dtype=np.uint64)
        rows.flags.writeable = False
        return SinkReach(dffs=dffs, words=words, rows=rows, blocked=False)
    drivers = np.fromiter(
        (circuit.next_state_node(d) for d in dffs), dtype=np.intp,
        count=len(dffs),
    )
    if circuit.num_nodes * words <= FULL_REACH_BUDGET_WORDS:
        rows = np.ascontiguousarray(ff_reach(circuit).rows[drivers])
        rows.flags.writeable = False
        return SinkReach(dffs=dffs, words=words, rows=rows, blocked=False)

    plan = _sweep_plan(circuit)
    block_words = max(1, block_words)
    rows = np.zeros((len(dffs), words), dtype=np.uint64)
    scratch = np.empty(
        (circuit.num_nodes, min(block_words, words)), dtype=np.uint64
    )
    dff_ids = np.asarray(dffs, dtype=np.intp)
    for w0 in range(0, words, block_words):
        w1 = min(w0 + block_words, words)
        view = scratch[:, : w1 - w0]
        view[:] = 0
        k0, k1 = w0 * 64, min(w1 * 64, len(dffs))
        local = np.arange(k1 - k0)
        view[dff_ids[k0:k1], local // 64] |= (
            np.uint64(1) << (local % 64).astype(np.uint64)
        )
        _or_sweep(view, plan)
        rows[:, w0:w1] = view[drivers]
    rows.flags.writeable = False
    return SinkReach(dffs=dffs, words=words, rows=rows, blocked=True)


def sink_reach(circuit: Circuit) -> SinkReach:
    """The circuit's sink-major source sets (built once per version).

    Persisted to the on-disk artifact store when one is active (the
    streaming pipeline's topology pass on large circuits).
    """
    return circuit.derived(_SINK_KEY, build_sink_reach, persist="sink-reach")


def _build_launch_matrix(circuit: Circuit) -> np.ndarray:
    """Source-major packed sink sets: the bit-transpose of sink-reach.

    Row ``k`` holds bit ``j`` iff (``dffs[k]``, ``dffs[j]``) is a
    connected pair.  The transpose runs in blocks of
    :data:`_TRANSPOSE_BLOCK_WORDS` source words so the unpacked byte
    matrix never exceeds ``num_dffs × 1024`` bytes.
    """
    reach = sink_reach(circuit)
    n = len(reach.dffs)
    sink_words = max(1, -(-n // 64))
    out = np.zeros((n, sink_words), dtype=np.uint64)
    for w0 in range(0, reach.words, _TRANSPOSE_BLOCK_WORDS):
        if w0 * 64 >= n:
            break
        w1 = min(w0 + _TRANSPOSE_BLOCK_WORDS, reach.words)
        bits = np.unpackbits(
            np.ascontiguousarray(reach.rows[:, w0:w1]).view(np.uint8),
            axis=1, bitorder="little",
        )
        nbits = min(n - w0 * 64, (w1 - w0) * 64)
        packed = np.packbits(
            np.ascontiguousarray(bits[:, :nbits].T),
            axis=1, bitorder="little",
        )
        padded = np.zeros((nbits, sink_words * 8), dtype=np.uint8)
        padded[:, : packed.shape[1]] = packed
        out[w0 * 64: w0 * 64 + nbits] = padded.view(np.uint64)
    out.flags.writeable = False
    return out


def launch_matrix(circuit: Circuit) -> np.ndarray:
    """Source-major packed connectivity matrix (built once per version)."""
    return circuit.derived(_LAUNCH_KEY, _build_launch_matrix)


def iter_launch_groups(
    circuit: Circuit, include_self_loops: bool = True
) -> Iterator[LaunchGroup]:
    """Stream the connected relation one launching FF at a time.

    Yields a :class:`LaunchGroup` for every source FF with at least one
    connected sink, in ascending source id, sinks ascending within each
    group — chained, the groups enumerate exactly the
    :func:`connected_ff_pairs` order without materializing the full pair
    list.  Peak memory follows :func:`sink_reach` (blocked above the
    size threshold) plus one unpacked sink row at a time.
    """
    reach = sink_reach(circuit)
    dffs = reach.dffs
    if not dffs:
        return
    matrix = launch_matrix(circuit)
    dff_ids = np.asarray(dffs, dtype=np.intp)
    for k, source in enumerate(dffs):
        bits = np.unpackbits(
            matrix[k].view(np.uint8), bitorder="little"
        )[: len(dffs)]
        if not include_self_loops:
            bits[k] = 0
        idx = np.nonzero(bits)[0]
        if len(idx):
            yield LaunchGroup(int(source), dff_ids[idx])


def launch_group_stats(
    circuit: Circuit, include_self_loops: bool = True
) -> tuple[int, int]:
    """``(non-empty launch groups, total connected pairs)`` by popcount.

    Reads the cached launch matrix — no pair or group enumeration — so
    streaming runs can report ``groups_total`` and the connected-pair
    count before folding the first group.
    """
    n = len(sink_reach(circuit).dffs)
    if not n:
        return 0, 0
    matrix = launch_matrix(circuit)
    counts = np.bitwise_count(matrix).sum(axis=1).astype(np.int64)
    if not include_self_loops:
        k = np.arange(n)
        self_bits = (
            matrix[k, k // 64] >> (k % 64).astype(np.uint64)
        ) & np.uint64(1)
        counts -= self_bits.astype(np.int64)
    return int((counts > 0).sum()), int(counts.sum())


# ----------------------------------------------------------------------
# Pair queries (BFS below the tiny-circuit cutoff, packed above it).
# ----------------------------------------------------------------------
def _prefer_bfs(circuit: Circuit) -> bool:
    """Whether the per-sink BFS should answer pair queries outright."""
    return circuit.num_nodes * max(1, len(circuit.dffs)) < BFS_CUTOFF


def prefers_bfs(circuit: Circuit) -> bool:
    """True when pair queries auto-select the per-sink BFS path.

    Exposed for benchmarks/telemetry: below :data:`BFS_CUTOFF` the
    vectorized bitset pass cannot amortise its fixed numpy setup cost,
    so tiny circuits are answered by the reference BFS instead.
    """
    return _prefer_bfs(circuit)


def source_ffs_of_sink(circuit: Circuit, sink_dff: int) -> set[int]:
    """Flip-flops with a combinational path into ``sink_dff``'s D input."""
    if _prefer_bfs(circuit):
        return source_ffs_of_sink_bfs(circuit, sink_dff)
    reach = ff_reach(circuit)
    # A DFF row carries its own bit, so a direct DFF->DFF edge reports
    # the driving flip-flop without special casing.
    return set(reach.sources_of(circuit.next_state_node(sink_dff)))


def source_ffs_of_sink_bfs(circuit: Circuit, sink_dff: int) -> set[int]:
    """Reference BFS implementation of :func:`source_ffs_of_sink`."""
    cone = circuit.transitive_fanin([circuit.next_state_node(sink_dff)])
    return {n for n in cone if circuit.types[n] == GateType.DFF}


def connected_pair_arrays(
    circuit: Circuit, include_self_loops: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """The connected relation as ``(sources, sinks)`` node-id arrays.

    Rows are in the canonical ascending (source, sink) order.  This is
    the array-level core of :func:`connected_ff_pairs` for consumers
    that operate on the relation wholesale and do not need pair objects.
    """
    reach = sink_reach(circuit)
    dffs = reach.dffs
    if not dffs:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    bits = np.unpackbits(
        reach.rows.view(np.uint8), axis=1, bitorder="little"
    )[:, : len(dffs)]
    # Transposed nonzero enumerates (source, sink) in row-major order;
    # ascending bit/DFF-list index is ascending node id, so the result is
    # already in the canonical (source, sink) sort without a sort call.
    source_index, sink_index = np.nonzero(np.ascontiguousarray(bits.T))
    dff_ids = np.asarray(dffs, dtype=np.intp)
    sources = dff_ids[source_index]
    sinks = dff_ids[sink_index]
    if not include_self_loops:
        keep = sources != sinks
        sources, sinks = sources[keep], sinks[keep]
    return sources, sinks


def connected_ff_pairs(
    circuit: Circuit, include_self_loops: bool = True
) -> list[FFPair]:
    """All ordered FF pairs joined by at least one combinational path.

    Pairs are returned sorted by (source, sink) id for determinism.  The
    paper analyses self-loop pairs too (its SAT-based comparison excluded
    them), so they are included by default.  Tiny circuits (below
    :data:`BFS_CUTOFF`) take the BFS path — same pairs, none of the
    vectorized pass's fixed setup cost.
    """
    if _prefer_bfs(circuit):
        return connected_ff_pairs_bfs(circuit, include_self_loops)
    sources, sinks = connected_pair_arrays(circuit, include_self_loops)
    # ``_make`` binds straight to ``tuple.__new__`` — materialising
    # thousands of pairs this way is measurably cheaper than calling the
    # generated ``FFPair.__new__``.
    return list(map(FFPair._make, zip(sources.tolist(), sinks.tolist())))


def connected_ff_pairs_bfs(
    circuit: Circuit, include_self_loops: bool = True
) -> list[FFPair]:
    """Reference BFS implementation of :func:`connected_ff_pairs`."""
    pairs: list[FFPair] = []
    for sink in circuit.dffs:
        for source in source_ffs_of_sink_bfs(circuit, sink):
            if source == sink and not include_self_loops:
                continue
            pairs.append(FFPair(source, sink))
    pairs.sort(key=lambda p: (p.source, p.sink))
    return pairs


def pair_count_matrix(circuit: Circuit) -> dict[int, set[int]]:
    """Map each sink DFF id to the set of its source DFF ids.

    Reads the same cached reach matrix as :func:`connected_ff_pairs` —
    the per-sink cones are not recomputed.
    """
    return {
        sink: source_ffs_of_sink(circuit, sink) for sink in circuit.dffs
    }


def nodes_reaching(circuit: Circuit, target: int) -> set[int]:
    """Nodes with a combinational path to ``target`` (including it)."""
    return circuit.transitive_fanin([target])


def nodes_reachable_from(circuit: Circuit, source: int) -> set[int]:
    """Nodes combinationally reachable from ``source`` (including it)."""
    return circuit.transitive_fanout([source])


def combinational_depth(circuit: Circuit) -> int:
    """Maximum combinational level in the circuit."""
    levels = circuit.levels()
    return max(levels) if levels else 0
