"""Reader/writer for the ISCAS89 ``.bench`` netlist format.

The format is line oriented::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G10 = DFF(G14)
    G14 = NAND(G0, G10)
    G17 = NOT(G11)

Supported functions: AND, NAND, OR, NOR, XOR, XNOR, NOT, BUF/BUFF, DFF, MUX
(three operands: select, d0, d1) and the constants VSS/GND (0) and VDD (1).
Signals may be used before they are defined; OUTPUT may name any signal.
"""

from __future__ import annotations

import io
import re
from pathlib import Path

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, CircuitError, validate

_ASSIGN_RE = re.compile(
    r"^(?P<lhs>[^\s=]+)\s*=\s*(?P<func>[A-Za-z01]+)\s*\((?P<args>[^)]*)\)\s*$"
)
_DECL_RE = re.compile(r"^(?P<kind>INPUT|OUTPUT)\s*\((?P<name>[^)]+)\)\s*$")

_FUNC_TO_TYPE = {
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "DFF": GateType.DFF,
    "MUX": GateType.MUX,
}

_TYPE_TO_FUNC = {
    GateType.AND: "AND",
    GateType.NAND: "NAND",
    GateType.OR: "OR",
    GateType.NOR: "NOR",
    GateType.XOR: "XOR",
    GateType.XNOR: "XNOR",
    GateType.NOT: "NOT",
    GateType.BUF: "BUFF",
    GateType.DFF: "DFF",
    GateType.MUX: "MUX",
}


class BenchFormatError(CircuitError):
    """Raised on malformed ``.bench`` input."""


def loads(text: str, name: str = "bench", check: bool = True) -> Circuit:
    """Parse ``.bench`` source text into a validated :class:`Circuit`.

    Every malformed construct raises :class:`BenchFormatError` (a
    :class:`~repro.circuit.netlist.CircuitError`) carrying the 1-based
    source line it came from.  ``check=False`` skips the final structural
    validation — the lint pass uses it to report *all* problems of a
    parseable-but-broken netlist instead of the first.
    """
    inputs: list[tuple[str, int]] = []
    outputs: list[tuple[str, int]] = []
    assigns: dict[str, tuple[str, list[str], int]] = {}

    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        decl = _DECL_RE.match(line)
        if decl:
            target = inputs if decl.group("kind") == "INPUT" else outputs
            target.append((decl.group("name").strip(), line_no))
            continue
        assign = _ASSIGN_RE.match(line)
        if assign:
            lhs = assign.group("lhs")
            func = assign.group("func").upper()
            args = [a.strip() for a in assign.group("args").split(",") if a.strip()]
            if lhs in assigns:
                raise BenchFormatError(f"line {line_no}: {lhs!r} defined twice")
            if func in ("VDD", "1"):
                assigns[lhs] = ("CONST1", args, line_no)
            elif func in ("VSS", "GND", "0"):
                assigns[lhs] = ("CONST0", args, line_no)
            elif func in _FUNC_TO_TYPE:
                assigns[lhs] = (func, args, line_no)
            else:
                raise BenchFormatError(f"line {line_no}: unknown function {func!r}")
            continue
        raise BenchFormatError(f"line {line_no}: cannot parse {raw_line!r}")

    circuit = Circuit(name)
    ids: dict[str, int] = {}

    for signal, line_no in inputs:
        if signal in ids:
            raise BenchFormatError(
                f"line {line_no}: {signal!r} declared INPUT twice"
            )
        ids[signal] = circuit.add_node(GateType.INPUT, (), signal)

    # First pass: create every defined node with empty fanins so forward
    # references resolve; second pass wires them up.
    for signal, (func, _args, line_no) in assigns.items():
        if signal in ids:
            raise BenchFormatError(
                f"line {line_no}: {signal!r} defined as both INPUT and gate"
            )
        if func == "CONST0":
            gate_type = GateType.CONST0
        elif func == "CONST1":
            gate_type = GateType.CONST1
        else:
            gate_type = _FUNC_TO_TYPE[func]
        ids[signal] = circuit.add_node(gate_type, (), signal)

    for signal, (func, args, line_no) in assigns.items():
        if func in ("CONST0", "CONST1"):
            if args:
                raise BenchFormatError(
                    f"line {line_no}: {signal!r}: constants take no operands"
                )
            continue
        try:
            fanins = tuple(ids[a] for a in args)
        except KeyError as exc:
            raise BenchFormatError(
                f"line {line_no}: {signal!r}: undefined signal {exc.args[0]!r}"
            ) from None
        circuit.set_fanins(ids[signal], fanins)

    seen_po: set[str] = set()
    for signal, line_no in outputs:
        if signal not in ids:
            raise BenchFormatError(
                f"line {line_no}: OUTPUT names undefined signal {signal!r}"
            )
        if signal in seen_po:
            raise BenchFormatError(
                f"line {line_no}: {signal!r} declared OUTPUT twice"
            )
        seen_po.add(signal)
        circuit.add_node(GateType.OUTPUT, (ids[signal],), f"{signal}_po")

    if check:
        validate(circuit)
    return circuit


def load(path: str | Path, check: bool = True) -> Circuit:
    """Read a ``.bench`` file from disk.

    Parse and validation errors are re-raised with the file name
    prefixed, so ``file: line N: ...`` locates the defect exactly.
    """
    path = Path(path)
    try:
        return loads(path.read_text(), name=path.stem, check=check)
    except CircuitError as exc:
        raise BenchFormatError(f"{path.name}: {exc}") from None


def dumps(circuit: Circuit) -> str:
    """Serialise a circuit to ``.bench`` text (MUX kept as-is)."""
    out = io.StringIO()
    out.write(f"# {circuit.name}\n")
    stats = circuit.stats()
    out.write(
        f"# {stats['inputs']} inputs, {stats['outputs']} outputs, "
        f"{stats['dffs']} flip-flops, {stats['gates']} gates\n"
    )
    for node_id in circuit.inputs:
        out.write(f"INPUT({circuit.names[node_id]})\n")
    for node_id in circuit.outputs:
        driver = circuit.fanins[node_id][0]
        out.write(f"OUTPUT({circuit.names[driver]})\n")
    out.write("\n")
    for node_id in circuit.topo_order():
        gate_type = circuit.types[node_id]
        if gate_type in (GateType.INPUT, GateType.OUTPUT):
            continue
        name = circuit.names[node_id]
        if gate_type == GateType.CONST0:
            out.write(f"{name} = VSS()\n")
        elif gate_type == GateType.CONST1:
            out.write(f"{name} = VDD()\n")
        else:
            args = ", ".join(circuit.names[f] for f in circuit.fanins[node_id])
            out.write(f"{name} = {_TYPE_TO_FUNC[gate_type]}({args})\n")
    return out.getvalue()


def dump(circuit: Circuit, path: str | Path) -> None:
    """Write ``circuit`` to ``path`` in ``.bench`` format."""
    Path(path).write_text(dumps(circuit))
