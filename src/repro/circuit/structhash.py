"""Canonical structural hashing of netlists and per-FF analysis cones.

Three related fingerprints, all independent of node creation order and of
internal gate names:

* :func:`structural_hash` — an order-invariant digest of the whole
  netlist: gate types, fanin structure and DFF placement, with the
  PI/DFF/PO *names* as the identity anchors of the free leaves.  Two
  circuits built in different node orders (or with different internal
  gate names) hash identically iff they describe the same structure over
  the same interface.  Commutative gates sort their fanin hashes — the
  same canonicalisation the sweep pass uses for duplicate detection
  (:data:`COMMUTATIVE` lives here so both share one definition).
* :func:`content_key` — an id-order-*sensitive* digest of the raw
  ``types``/``fanins`` arrays.  This is the address used by the on-disk
  :class:`~repro.store.ArtifactStore`: derived artifacts such as the
  compiled :class:`~repro.logic.simplan.SimPlan` or the packed reach
  matrices reference nodes *by id*, so two circuits may only share them
  when their id layouts match exactly.  ``include_names=True`` folds the
  full name table in, for artifacts that embed names (lint/sweep
  reports).
* :func:`launch_cone_hashes` / :func:`capture_cone_hashes` — per-FF
  digests of the time-frame-expanded cones the decision stage actually
  reads for a pair: the launch FF's next-state cone and the capture FF's
  ``frames``-deep D cone.  The expanded cone is hashed with its *node
  layout* (relative id order) included, so a pair's decide record is a
  pure function of its ``(launch, capture)`` hash pair — the invariant
  the incremental ECO re-analysis (:mod:`repro.core.incremental`) relies
  on and the hypothesis differentials enforce.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit

#: Gate types whose fanin order does not matter; their fanin hashes are
#: sorted before hashing (shared with the sweep pass's duplicate
#: detection in :mod:`repro.analysis.sweep`).
COMMUTATIVE = frozenset({
    GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
    GateType.XOR, GateType.XNOR,
})

#: :meth:`Circuit.derived` cache key for the per-node hash table.
_NODE_HASH_KEY = "struct-node-hashes"
#: cache keys for the whole-netlist digests.
_STRUCT_KEY = "structural-hash"
_CONTENT_KEY = "content-key"
_CONTENT_NAMES_KEY = "content-key-names"
#: cache key prefix for the per-FF cone hash tables.
_CONE_KEY = "cone-hashes"

_SEP = b"\x1f"


def _digest(parts: Iterable[bytes]) -> bytes:
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        h.update(part)
        h.update(_SEP)
    return h.digest()


def _build_node_hashes(circuit: Circuit) -> list[bytes]:
    """Per-node structural hash with name-anchored interface leaves.

    A node's hash covers its gate type and (recursively) its whole
    combinational fanin cone.  Free leaves — primary inputs and DFF
    outputs — are anchored by *name*: without the anchor, structurally
    symmetric but distinct leaves would collide and reconvergence would
    be lost.  Internal gate names never enter the hash.
    """
    hashes: list[bytes] = [b""] * circuit.num_nodes
    types = circuit.types
    names = circuit.names
    for node_id in circuit.topo_order():
        gate_type = types[node_id]
        if gate_type == GateType.INPUT:
            hashes[node_id] = _digest((b"input", names[node_id].encode()))
        elif gate_type == GateType.DFF:
            hashes[node_id] = _digest((b"dff", names[node_id].encode()))
        elif gate_type in (GateType.CONST0, GateType.CONST1):
            hashes[node_id] = _digest((gate_type.name.encode(),))
        else:
            fanin_hashes = [hashes[f] for f in circuit.fanins[node_id]]
            if gate_type in COMMUTATIVE:
                fanin_hashes.sort()
            parts = [gate_type.name.encode()]
            if gate_type == GateType.OUTPUT:
                parts.append(names[node_id].encode())
            parts.extend(fanin_hashes)
            hashes[node_id] = _digest(parts)
    return hashes


def node_hashes(circuit: Circuit) -> list[bytes]:
    """The per-node structural hash table (cached; name-scoped)."""
    return circuit.derived(_NODE_HASH_KEY, _build_node_hashes, scope="names")


def _build_structural_hash(circuit: Circuit) -> str:
    hashes = node_hashes(circuit)
    items: list[bytes] = list(hashes)
    # DFF D-input bindings: the combinational hash of a DFF node is only
    # its name anchor, so the sequential edge must be added explicitly.
    for dff in circuit.dffs:
        fanins = circuit.fanins[dff]
        driver = hashes[fanins[0]] if fanins else b"undriven"
        items.append(_digest((b"state", circuit.names[dff].encode(), driver)))
    items.sort()
    outer = hashlib.sha256()
    for item in items:
        outer.update(item)
    return outer.hexdigest()


def structural_hash(circuit: Circuit) -> str:
    """Order-invariant digest of the whole netlist (cached; name-scoped).

    Covers every node's type and fanin structure (sorted multiset of the
    name-anchored cone hashes, so dead logic counts too) plus each DFF's
    D binding.  Invariant under node reordering and internal-gate
    renames; sensitive to interface renames, gate-type flips, fanin
    rewires and DFF insertion/removal.
    """
    return circuit.derived(_STRUCT_KEY, _build_structural_hash, scope="names")


def content_key(circuit: Circuit, include_names: bool = False) -> str:
    """Id-order-sensitive digest of the raw node arrays (cached).

    The on-disk store address for derived artifacts: everything the
    expensive artifacts read (``types[]``, ``fanins[]`` in id order) and
    nothing they do not (names, unless ``include_names``).
    """

    def build(c: Circuit) -> str:
        h = hashlib.sha256()
        for node_id in range(c.num_nodes):
            h.update(str(int(c.types[node_id])).encode())
            h.update(_SEP)
            h.update(",".join(map(str, c.fanins[node_id])).encode())
            h.update(_SEP)
        if include_names:
            for name in c.names:
                h.update(name.encode())
                h.update(_SEP)
        return h.hexdigest()

    if include_names:
        return circuit.derived(_CONTENT_NAMES_KEY, build, scope="names")
    return circuit.derived(_CONTENT_KEY, build)


# ----------------------------------------------------------------------
# Per-FF launch/capture cone hashes over the time-frame expansion.
# ----------------------------------------------------------------------
def _cone_hash(comb: Circuit, roots: list[int]) -> str:
    """Digest of the expanded cone feeding ``roots``, layout included.

    The cone's nodes are renumbered by ascending expanded id, so the
    digest covers the gate structure, the name-anchored free leaves
    *and* the relative node order the decision engines traverse —
    everything that can influence a pair's decide record.
    """
    cone = sorted(comb.transitive_fanin(roots))
    local = {node_id: k for k, node_id in enumerate(cone)}
    h = hashlib.sha256()
    for node_id in cone:
        gate_type = comb.types[node_id]
        h.update(gate_type.name.encode())
        h.update(_SEP)
        if gate_type == GateType.INPUT:
            h.update(comb.names[node_id].encode())
        else:
            h.update(
                ",".join(str(local[f]) for f in comb.fanins[node_id]).encode()
            )
        h.update(_SEP)
    h.update(b"roots")
    for root in roots:
        h.update(_SEP)
        h.update(str(local[root]).encode())
    return h.hexdigest()


def _build_cone_hashes(
    circuit: Circuit, frames: int
) -> tuple[dict[int, str], dict[int, str]]:
    from repro.circuit.timeframe import expand_cached

    expansion = expand_cached(circuit, frames)
    comb = expansion.comb
    launch: dict[int, str] = {}
    capture: dict[int, str] = {}
    for k, dff in enumerate(circuit.dffs):
        launch[dff] = _cone_hash(comb, [expansion.ff_at[1][k]])
        capture[dff] = _cone_hash(
            comb, [expansion.ff_at[f][k] for f in range(1, frames + 1)]
        )
    return launch, capture


def _cone_tables(
    circuit: Circuit, frames: int
) -> tuple[dict[int, str], dict[int, str]]:
    return circuit.derived(
        f"{_CONE_KEY}-{frames}",
        lambda c: _build_cone_hashes(c, frames),
        scope="names",
    )


def launch_cone_hashes(circuit: Circuit, frames: int = 2) -> dict[int, str]:
    """Per-FF digest of the launch (next-state) cone, by DFF node id.

    The frame-0 cone feeding ``FF@1`` in the ``frames``-frame expansion.
    Cached per netlist version alongside the capture table.
    """
    return _cone_tables(circuit, frames)[0]


def capture_cone_hashes(circuit: Circuit, frames: int = 2) -> dict[int, str]:
    """Per-FF digest of the full ``frames``-deep capture cone, by DFF id.

    Covers the cones of ``FF@1 .. FF@frames`` — every expanded node the
    decision stage can read when the FF is a pair's capture sink.  A
    pair's decide record is a function of ``(launch[source],
    capture[sink])`` plus the options fingerprint.
    """
    return _cone_tables(circuit, frames)[1]
