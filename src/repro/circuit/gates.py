"""Gate types of the synchronous sequential netlist model.

The paper's analysis exploits *controlling values*: an input value that fixes
a gate's output regardless of the other inputs (0 for AND/NAND, 1 for
OR/NOR).  ``GateType`` centralises those properties so the simulators, the
implication engine and the sensitization checks all agree on them.

Conventions
-----------
* ``INPUT`` nodes have no fanin (primary inputs).
* ``OUTPUT`` nodes have exactly one fanin and behave as buffers; they mark
  primary outputs.
* ``DFF`` nodes represent positive-edge-triggered D flip-flops driven by a
  single shared clock (the paper's circuit model).  The node's *output* is
  the Q signal; its single fanin is the D input.  No direct FF-to-FF
  feedback restrictions are imposed beyond the netlist being well formed.
* ``MUX`` nodes take fanins ``(select, d0, d1)`` and output ``d0`` when the
  select is 0, ``d1`` when it is 1.
"""

from __future__ import annotations

from enum import IntEnum

from repro.logic.values import ONE, ZERO


class GateType(IntEnum):
    """All node types a :class:`~repro.circuit.netlist.Circuit` may contain."""

    INPUT = 0
    OUTPUT = 1
    DFF = 2
    BUF = 3
    NOT = 4
    AND = 5
    NAND = 6
    OR = 7
    NOR = 8
    XOR = 9
    XNOR = 10
    MUX = 11
    CONST0 = 12
    CONST1 = 13


#: Gate types with a controlling value, mapped to ``(controlling, inverted)``.
#: ``controlling`` is the input value that determines the output on its own;
#: ``inverted`` tells whether the output is complemented (NAND/NOR/NOT).
CONTROLLING = {
    GateType.AND: (ZERO, False),
    GateType.NAND: (ZERO, True),
    GateType.OR: (ONE, False),
    GateType.NOR: (ONE, True),
}

#: Single-input combinational types, mapped to whether they invert.
UNARY = {
    GateType.BUF: False,
    GateType.NOT: True,
    GateType.OUTPUT: False,
}

#: Parity gate types, mapped to whether they invert (XNOR inverts).
PARITY = {
    GateType.XOR: False,
    GateType.XNOR: True,
}

#: Types whose nodes act as combinational-logic *sources* (no combinational
#: fanin): primary inputs, flip-flop outputs and constants.
SOURCE_TYPES = frozenset(
    {GateType.INPUT, GateType.DFF, GateType.CONST0, GateType.CONST1}
)

#: Types evaluated as combinational logic.
COMBINATIONAL_TYPES = frozenset(
    {
        GateType.OUTPUT,
        GateType.BUF,
        GateType.NOT,
        GateType.AND,
        GateType.NAND,
        GateType.OR,
        GateType.NOR,
        GateType.XOR,
        GateType.XNOR,
        GateType.MUX,
    }
)

#: Allowed fanin counts per type; ``None`` means "one or more".
_FANIN_ARITY = {
    GateType.INPUT: 0,
    GateType.OUTPUT: 1,
    GateType.DFF: 1,
    GateType.BUF: 1,
    GateType.NOT: 1,
    GateType.AND: None,
    GateType.NAND: None,
    GateType.OR: None,
    GateType.NOR: None,
    GateType.XOR: None,
    GateType.XNOR: None,
    GateType.MUX: 3,
    GateType.CONST0: 0,
    GateType.CONST1: 0,
}


def fanin_arity_ok(gate_type: GateType, count: int) -> bool:
    """Check whether ``count`` fanins is legal for ``gate_type``."""
    expected = _FANIN_ARITY[gate_type]
    if expected is None:
        return count >= 1
    return count == expected


def controlling_value(gate_type: GateType) -> int | None:
    """Return the controlling input value of ``gate_type`` or ``None``."""
    entry = CONTROLLING.get(gate_type)
    return entry[0] if entry is not None else None


def controlled_output(gate_type: GateType) -> int | None:
    """Output value of ``gate_type`` when some input is controlling."""
    entry = CONTROLLING.get(gate_type)
    if entry is None:
        return None
    controlling, inverted = entry
    return controlling ^ inverted


def noncontrolled_output(gate_type: GateType) -> int | None:
    """Output value of ``gate_type`` when every input is non-controlling."""
    entry = CONTROLLING.get(gate_type)
    if entry is None:
        return None
    controlling, inverted = entry
    return (1 - controlling) ^ inverted
