"""Bounded path enumeration between flip-flop pairs.

The detector is deliberately *non-path-based* (that is the paper's whole
point — per-pair analysis avoids the combinatorial explosion), but users
acting on a multi-cycle verdict usually want to see the concrete paths
whose constraints get relaxed.  This module enumerates them lazily with a
hard cap, along with per-path topological delays for STA reports.

A path is the paper's Definition in §2.1: an alternating sequence of gates
and edges from a source (FF output) to a sink (an FF's data input),
represented here by the node id sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.circuit.gates import COMBINATIONAL_TYPES
from repro.circuit.netlist import Circuit
from repro.circuit.topology import FFPair
from repro.sta.timing import DelayModel


@dataclass(frozen=True)
class Path:
    """One combinational path, source node first, sink D-input node last."""

    nodes: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.nodes)


def iter_paths(
    circuit: Circuit, source: int, target: int, max_paths: int | None = None
) -> Iterator[Path]:
    """Yield combinational paths from ``source`` to ``target``.

    ``source`` is typically an FF output, ``target`` the next-state node of
    another FF.  Traversal is depth-first over combinational edges only and
    never crosses a flip-flop; ``max_paths`` bounds the enumeration (the
    number of paths can be exponential — the reason non-path-based methods
    exist).
    """
    reach = circuit.transitive_fanin([target])
    if source not in reach:
        return
    yielded = 0
    stack: list[int] = [source]

    def walk(node: int) -> Iterator[Path]:
        nonlocal yielded
        if node == target:
            yield Path(tuple(stack))
            yielded += 1
            return
        for fanout in circuit.fanouts(node):
            if max_paths is not None and yielded >= max_paths:
                return
            if fanout not in reach:
                continue
            if circuit.types[fanout] not in COMBINATIONAL_TYPES:
                continue
            stack.append(fanout)
            yield from walk(fanout)
            stack.pop()

    yield from walk(source)


def paths_between(
    circuit: Circuit, pair: FFPair, max_paths: int = 1000
) -> list[Path]:
    """All (up to ``max_paths``) paths of a flip-flop pair."""
    target = circuit.next_state_node(pair.sink)
    if pair.source == target:
        # Direct FF-to-FF wire: the degenerate single-node path.
        return [Path((pair.source,))]
    return list(iter_paths(circuit, pair.source, target, max_paths))


def count_paths(circuit: Circuit, pair: FFPair) -> int:
    """Exact number of paths of a pair, by dynamic programming (fast even
    when enumeration would explode)."""
    target = circuit.next_state_node(pair.sink)
    reach = circuit.transitive_fanin([target])
    if pair.source not in reach:
        return 0
    counts: dict[int, int] = {}

    def count_from(node: int) -> int:
        if node == target:
            return 1
        if node in counts:
            return counts[node]
        total = 0
        for fanout in circuit.fanouts(node):
            if fanout in reach and circuit.types[fanout] in COMBINATIONAL_TYPES:
                total += count_from(fanout)
        if target == node:  # pragma: no cover - handled above
            total += 1
        counts[node] = total
        return total

    return count_from(pair.source)


def path_delay(
    circuit: Circuit, path: Path, model: DelayModel | None = None
) -> float:
    """Topological delay of one path (source pin excluded, as in STA)."""
    model = model or DelayModel()
    return sum(
        model.delay_of(circuit.types[node])
        for node in path.nodes[1:]
    )


def longest_path(
    circuit: Circuit, pair: FFPair, model: DelayModel | None = None,
    max_paths: int = 10_000,
) -> Path | None:
    """The maximum-delay path of a pair (bounded enumeration)."""
    model = model or DelayModel()
    best: Path | None = None
    best_delay = float("-inf")
    for path in paths_between(circuit, pair, max_paths):
        delay = path_delay(circuit, path, model)
        if delay > best_delay:
            best, best_delay = path, delay
    return best
