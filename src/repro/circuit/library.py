"""Built-in example circuits.

Contains faithful reconstructions of the circuits the paper uses to explain
the method:

* :func:`fig1_circuit` — the running example of Fig. 1: a 4-state Gray-code
  counter whose decoded states enable a MUX-loaded register chain, making
  every path from FF1 to FF2 a 3-cycle path.
* :func:`fig3_circuit` — Fig. 1 technology-mapped as in Fig. 3 (each MUX
  replaced by two ANDs, an OR and a NOT), which exhibits a static hazard at
  FF2 for the pair (FF3, FF2).
* :func:`fig4_fragment` — a combinational fragment whose A→C path is
  statically co-sensitizable but not statically sensitizable (Fig. 4).
* :func:`s27` — the public ISCAS89 s27 benchmark, embedded verbatim.
* small parametric building blocks (counters, shift registers) reused by
  tests and examples.
"""

from __future__ import annotations

from repro.circuit.bench import loads
from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit
from repro.circuit.techmap import techmap


def fig1_circuit() -> Circuit:
    """The paper's Fig. 1 example.

    FF3/FF4 form a free-running Gray-code counter cycling
    ``(0,0) → (0,1) → (1,1) → (1,0) → (0,0)``.  MUX1 loads FF1 from primary
    input IN while the counter reads (0,0); MUX2 loads FF2 from FF1 while it
    reads (1,0); otherwise the registers hold.  The counter needs three
    clocks from the launch of a new FF1 value to its capture into FF2, so
    all FF1→FF2 paths are 3-cycle paths and (FF1, FF2) is a multi-cycle FF
    pair.
    """
    b = CircuitBuilder("fig1")
    data_in = b.input("IN")
    ff1 = b.dff("FF1")
    ff2 = b.dff("FF2")
    ff3 = b.dff("FF3")
    ff4 = b.dff("FF4")

    # Gray counter: FF3' = FF4, FF4' = not FF3.
    b.drive(ff3, b.buf(ff4, name="FF3_next"))
    b.drive(ff4, b.not_(ff3, name="FF4_next"))

    n_ff3 = b.not_(ff3, name="nFF3")
    n_ff4 = b.not_(ff4, name="nFF4")
    en1 = b.and_(n_ff3, n_ff4, name="EN1")  # decode state (0,0)
    en2 = b.and_(ff3, n_ff4, name="EN2")    # decode state (1,0)

    b.drive(ff1, b.mux(en1, ff1, data_in, name="MUX1"))
    b.drive(ff2, b.mux(en2, ff2, ff1, name="MUX2"))
    b.output("OUT", ff2)
    return b.build()


def fig3_circuit() -> Circuit:
    """Fig. 1 technology-mapped as in the paper's Fig. 3.

    Each multiplexer becomes ``OR(AND(NOT(sel), d0), AND(sel, d1))``.  On
    this structure the multi-cycle pair (FF3, FF2) admits a static hazard at
    FF2's data input (the glitch runs through the AND/OR of MUX2), which the
    static-sensitization check of Section 5 detects.
    """
    mapped = techmap(fig1_circuit(), name="fig3")
    return mapped


def fig4_fragment() -> Circuit:
    """Combinational fragment illustrating Fig. 4.

    ``C = AND(A, B)`` with side input B held at 0: the path A→C is *not*
    statically sensitizable (B would need the non-controlling value 1) but
    it *is* statically co-sensitizable to 0 (choose A = 0, the controlling
    value on the on-input).  The fragment is wrapped with flip-flops so the
    pair-level hazard API can be exercised on it.
    """
    b = CircuitBuilder("fig4")
    a_in = b.input("A_in")
    b_in = b.input("B_in")
    ff_a = b.dff("A", d=a_in)
    ff_b = b.dff("B", d=b_in)
    c = b.and_(ff_a, ff_b, name="C")
    b.dff("FF_C", d=c)
    b.output("C_out", c)
    return b.build()


_S27_BENCH = """
# s27 (ISCAS89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
"""


def s27() -> Circuit:
    """The ISCAS89 s27 benchmark circuit (4 PIs, 1 PO, 3 DFFs, 10 gates)."""
    return loads(_S27_BENCH, name="s27")


def binary_counter(width: int, name: str = "counter") -> Circuit:
    """Free-running ``width``-bit binary up-counter with its bits as POs."""
    b = CircuitBuilder(name)
    bits = [b.dff(f"q{i}") for i in range(width)]
    carry = b.const1("c_in")
    for i, bit in enumerate(bits):
        b.drive(bit, b.xor(bit, carry, name=f"q{i}_next"))
        if i < width - 1:
            carry = b.and_(bit, carry, name=f"carry{i}")
    for i, bit in enumerate(bits):
        b.output(f"count{i}", bit)
    return b.build()


def gray_counter(width: int, name: str = "gray") -> Circuit:
    """Gray-code counter built as a binary counter plus output XORs."""
    b = CircuitBuilder(name)
    bits = [b.dff(f"b{i}") for i in range(width)]
    carry = b.const1("c_in")
    for i, bit in enumerate(bits):
        b.drive(bit, b.xor(bit, carry, name=f"b{i}_next"))
        if i < width - 1:
            carry = b.and_(bit, carry, name=f"carry{i}")
    for i in range(width):
        if i == width - 1:
            gray = b.buf(bits[i], name=f"g{i}")
        else:
            gray = b.xor(bits[i], bits[i + 1], name=f"g{i}")
        b.output(f"gray{i}", gray)
    return b.build()


def shift_register(length: int, name: str = "shift") -> Circuit:
    """Serial-in shift register; every stage pair is single-cycle."""
    b = CircuitBuilder(name)
    serial_in = b.input("sin")
    previous = serial_in
    for i in range(length):
        stage = b.dff(f"s{i}", d=previous)
        previous = stage
    b.output("sout", previous)
    return b.build()


def enabled_pipeline(
    stages: int, counter_width: int = 2, spacing: int = 2, name: str = "pipe"
) -> Circuit:
    """Register pipeline whose stages load on distinct decoded counter states.

    Generalisation of Fig. 1: stage ``i`` loads when the free-running
    ``counter_width``-bit counter reads ``(i * spacing) mod 2**counter_width``.
    With ``spacing >= 2`` consecutive stages are multi-cycle pairs (the
    counter needs ``spacing`` clocks between their load states); with
    ``spacing = 1`` they are single-cycle.
    """
    b = CircuitBuilder(name)
    data_in = b.input("din")
    count = [b.dff(f"c{i}") for i in range(counter_width)]
    carry = b.const1("cin")
    for i, bit in enumerate(count):
        b.drive(bit, b.xor(bit, carry, name=f"c{i}_next"))
        if i < counter_width - 1:
            carry = b.and_(bit, carry, name=f"cc{i}")

    def decode(value: int, tag: str) -> int:
        literals = []
        for i, bit in enumerate(count):
            if (value >> i) & 1:
                literals.append(bit)
            else:
                literals.append(b.not_(bit, name=f"{tag}_n{i}"))
        return b.and_(*literals, name=tag)

    previous = data_in
    modulus = 1 << counter_width
    for stage in range(stages):
        enable = decode((stage * spacing) % modulus, f"en{stage}")
        reg = b.enabled_dff(f"r{stage}", enable, previous)
        previous = reg
    b.output("dout", previous)
    return b.build()
