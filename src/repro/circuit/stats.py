"""Structural statistics for circuits (reports and suite comparisons).

Beyond the raw counts of :meth:`Circuit.stats`, this module computes the
distributions a benchmark paper typically tabulates: gate-type histogram,
combinational depth and level population, fanout statistics and FF-pair
connectivity density.  The CLI's ``analyze`` output and the suite docs
use :func:`format_stats`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.circuit.gates import COMBINATIONAL_TYPES, GateType
from repro.circuit.netlist import Circuit
from repro.circuit.topology import connected_ff_pairs


@dataclass
class CircuitStats:
    """Aggregate structural numbers for one circuit."""

    name: str
    inputs: int
    outputs: int
    dffs: int
    gates: int
    gate_histogram: dict[str, int]
    depth: int
    #: number of combinational nodes per level (level 1 upward)
    level_population: list[int]
    max_fanout: int
    mean_fanout: float
    connected_pairs: int
    #: connected pairs / all ordered FF pairs
    pair_density: float


def compute_stats(circuit: Circuit) -> CircuitStats:
    """Compute :class:`CircuitStats` for ``circuit``."""
    histogram: Counter[str] = Counter()
    for gate_type in circuit.types:
        if gate_type in COMBINATIONAL_TYPES and gate_type != GateType.OUTPUT:
            histogram[gate_type.name] += 1

    levels = circuit.levels()
    depth = max(levels) if levels else 0
    population = [0] * depth
    for node, level in enumerate(levels):
        if level >= 1:
            population[level - 1] += 1

    fanout_counts = [
        len(circuit.fanouts(n)) for n in range(circuit.num_nodes)
        if circuit.types[n] != GateType.OUTPUT
    ]
    drivers = [c for c in fanout_counts if c > 0]

    num_dffs = len(circuit.dffs)
    pairs = len(connected_ff_pairs(circuit)) if num_dffs else 0
    density = pairs / (num_dffs * num_dffs) if num_dffs else 0.0

    base = circuit.stats()
    return CircuitStats(
        name=circuit.name,
        inputs=base["inputs"],
        outputs=base["outputs"],
        dffs=base["dffs"],
        gates=base["gates"],
        gate_histogram=dict(histogram),
        depth=depth,
        level_population=population,
        max_fanout=max(fanout_counts, default=0),
        mean_fanout=(sum(drivers) / len(drivers)) if drivers else 0.0,
        connected_pairs=pairs,
        pair_density=density,
    )


def format_stats(stats: CircuitStats) -> str:
    """Multi-line text rendering of :class:`CircuitStats`."""
    lines = [
        f"{stats.name}: {stats.inputs} PI, {stats.outputs} PO, "
        f"{stats.dffs} FF, {stats.gates} gates",
        f"  depth {stats.depth}, max fanout {stats.max_fanout}, "
        f"mean fanout {stats.mean_fanout:.2f}",
        f"  connected FF pairs {stats.connected_pairs} "
        f"(density {stats.pair_density:.2%})",
    ]
    if stats.gate_histogram:
        mix = ", ".join(
            f"{name}:{count}"
            for name, count in sorted(stats.gate_histogram.items())
        )
        lines.append(f"  gate mix: {mix}")
    return "\n".join(lines)
