"""Convenience API for constructing circuits programmatically.

Sequential circuits contain feedback through flip-flops, so the builder lets
a DFF be declared first (its Q output usable immediately) and connected to
its D driver later::

    b = CircuitBuilder("gray2")
    q0 = b.dff("q0")
    q1 = b.dff("q1")
    b.drive(q0, b.not_(q1, name="n_q1"))
    b.drive(q1, q0)
    b.output("out", b.xor(q0, q1))
    circuit = b.build()

``build()`` validates the result and returns the finished
:class:`~repro.circuit.netlist.Circuit`.
"""

from __future__ import annotations

from typing import Sequence

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, CircuitError, validate


class CircuitBuilder:
    """Incrementally build a :class:`Circuit`; node handles are plain ids."""

    def __init__(self, name: str = "circuit") -> None:
        self._circuit = Circuit(name)
        self._pending_dffs: set[int] = set()

    # ------------------------------------------------------------------
    # Sources.
    # ------------------------------------------------------------------
    def input(self, name: str) -> int:
        """Add a primary input."""
        return self._circuit.add_node(GateType.INPUT, (), name)

    def const0(self, name: str | None = None) -> int:
        return self._circuit.add_node(GateType.CONST0, (), name)

    def const1(self, name: str | None = None) -> int:
        return self._circuit.add_node(GateType.CONST1, (), name)

    def dff(self, name: str, d: int | None = None) -> int:
        """Add a flip-flop; drive its D input now or later via :meth:`drive`."""
        node = self._circuit.add_node(GateType.DFF, (0,), name)
        if d is None:
            self._pending_dffs.add(node)
        else:
            self._circuit.set_fanins(node, (d,))
        return node

    def drive(self, dff_node: int, d: int) -> None:
        """Connect the D input of a previously declared flip-flop."""
        if self._circuit.types[dff_node] != GateType.DFF:
            raise CircuitError("drive() target must be a DFF")
        self._circuit.set_fanins(dff_node, (d,))
        self._pending_dffs.discard(dff_node)

    # ------------------------------------------------------------------
    # Combinational gates.
    # ------------------------------------------------------------------
    def _gate(self, gate_type: GateType, fanins: Sequence[int], name: str | None) -> int:
        return self._circuit.add_node(gate_type, fanins, name)

    def and_(self, *fanins: int, name: str | None = None) -> int:
        return self._gate(GateType.AND, fanins, name)

    def nand(self, *fanins: int, name: str | None = None) -> int:
        return self._gate(GateType.NAND, fanins, name)

    def or_(self, *fanins: int, name: str | None = None) -> int:
        return self._gate(GateType.OR, fanins, name)

    def nor(self, *fanins: int, name: str | None = None) -> int:
        return self._gate(GateType.NOR, fanins, name)

    def xor(self, *fanins: int, name: str | None = None) -> int:
        return self._gate(GateType.XOR, fanins, name)

    def xnor(self, *fanins: int, name: str | None = None) -> int:
        return self._gate(GateType.XNOR, fanins, name)

    def not_(self, fanin: int, name: str | None = None) -> int:
        return self._gate(GateType.NOT, (fanin,), name)

    def buf(self, fanin: int, name: str | None = None) -> int:
        return self._gate(GateType.BUF, (fanin,), name)

    def mux(self, select: int, d0: int, d1: int, name: str | None = None) -> int:
        """2:1 multiplexer: output is ``d0`` when ``select`` = 0, else ``d1``."""
        return self._gate(GateType.MUX, (select, d0, d1), name)

    def output(self, name: str, fanin: int) -> int:
        """Mark ``fanin`` as a primary output (adds an OUTPUT buffer node)."""
        return self._gate(GateType.OUTPUT, (fanin,), name)

    def rename(self, node: int, new_name: str) -> int:
        """Rename a node; a metadata-only edit.

        Delegates to :meth:`Circuit.rename_node
        <repro.circuit.netlist.Circuit.rename_node>`: the structural
        version is untouched, so structure-scoped derived artifacts
        (simulation plans, reach matrices, implication tables) stay
        alive across the rename.
        """
        self._circuit.rename_node(node, new_name)
        return node

    # ------------------------------------------------------------------
    # Composite helpers used by the example library and the generator.
    # ------------------------------------------------------------------
    def enabled_dff(self, name: str, enable: int, d: int) -> int:
        """Flip-flop that loads ``d`` when ``enable`` = 1, else holds.

        This is the MUX-plus-FF idiom of the paper's Fig. 1 — the structure
        that gives rise to multi-cycle paths when the enables of source and
        sink registers are decoded from distant counter states.
        """
        dff_node = self.dff(name)
        mux_node = self.mux(enable, dff_node, d, name=f"{name}_mux")
        self.drive(dff_node, mux_node)
        return dff_node

    def build(self, validate_result: bool = True) -> Circuit:
        """Finish and validate the circuit."""
        if self._pending_dffs:
            missing = sorted(self._circuit.names[n] for n in self._pending_dffs)
            raise CircuitError(f"undriven DFFs: {missing}")
        if validate_result:
            validate(self._circuit)
        return self._circuit
