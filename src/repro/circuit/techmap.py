"""Technology mapping to an AND/OR/NOT netlist.

Section 5 of the paper analyses static hazards on the *technology-mapped*
circuit (its Fig. 3 replaces each multiplexer with two ANDs, an OR and a
NOT).  :func:`techmap` performs exactly that decomposition for MUX, XOR and
XNOR nodes while keeping names, flip-flops and functionality intact, so the
hazard checks can run on the mapped structure.
"""

from __future__ import annotations

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, validate

_DECOMPOSED = (GateType.MUX, GateType.XOR, GateType.XNOR)


def techmap(circuit: Circuit, name: str | None = None) -> Circuit:
    """Return a functionally equivalent circuit without MUX/XOR/XNOR nodes.

    * ``MUX(s, d0, d1)`` becomes ``OR(AND(NOT(s), d0), AND(s, d1))`` — the
      paper's Fig. 3 mapping, which is the one that exhibits static hazards.
    * ``XOR(a, b)`` becomes ``OR(AND(a, NOT(b)), AND(NOT(a), b))``;
      wider parity gates are decomposed into a chain of 2-input XORs first.
    * ``XNOR`` is an XOR chain followed by a NOT.

    Node ids change; original node names are preserved on the nodes that
    compute the same signal, so lookups by name keep working.
    """
    mapped = Circuit(name or f"{circuit.name}_mapped")
    new_id: dict[int, int] = {}

    def fresh(gate_type: GateType, fanins: tuple[int, ...], base: str) -> int:
        index = 0
        candidate = base
        while candidate in mapped:
            index += 1
            candidate = f"{base}_{index}"
        return mapped.add_node(gate_type, fanins, candidate)

    def map_xor2(a: int, b: int, base: str) -> int:
        not_a = fresh(GateType.NOT, (a,), f"{base}_na")
        not_b = fresh(GateType.NOT, (b,), f"{base}_nb")
        left = fresh(GateType.AND, (a, not_b), f"{base}_l")
        right = fresh(GateType.AND, (not_a, b), f"{base}_r")
        return fresh(GateType.OR, (left, right), f"{base}_or")

    # DFFs may be referenced before their D driver exists, so create every
    # non-decomposed node first and wire fanins in a second pass.
    for node_id in range(circuit.num_nodes):
        gate_type = circuit.types[node_id]
        if gate_type not in _DECOMPOSED:
            new_id[node_id] = mapped.add_node(gate_type, (), circuit.names[node_id])

    order = circuit.topo_order()
    for node_id in order:
        gate_type = circuit.types[node_id]
        if gate_type not in _DECOMPOSED:
            continue
        base = circuit.names[node_id]
        fanins = [new_id[f] for f in circuit.fanins[node_id]]
        if gate_type == GateType.MUX:
            select, d0, d1 = fanins
            not_s = fresh(GateType.NOT, (select,), f"{base}_ns")
            low = fresh(GateType.AND, (not_s, d0), f"{base}_a0")
            high = fresh(GateType.AND, (select, d1), f"{base}_a1")
            new_id[node_id] = mapped.add_node(GateType.OR, (low, high), base)
        else:
            acc = fanins[0]
            for position, operand in enumerate(fanins[1:]):
                acc = map_xor2(acc, operand, f"{base}_x{position}")
            if gate_type == GateType.XNOR:
                new_id[node_id] = mapped.add_node(GateType.NOT, (acc,), base)
            else:
                # Rename the final OR of the chain to carry the signal name.
                new_id[node_id] = mapped.add_node(GateType.BUF, (acc,), base)

    for node_id in range(circuit.num_nodes):
        if circuit.types[node_id] in _DECOMPOSED:
            continue
        mapped.set_fanins(new_id[node_id], tuple(new_id[f] for f in circuit.fanins[node_id]))

    validate(mapped)
    return mapped


def is_mapped(circuit: Circuit) -> bool:
    """True when the circuit contains no MUX/XOR/XNOR nodes."""
    return all(t not in _DECOMPOSED for t in circuit.types)
