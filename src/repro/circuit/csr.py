"""Flat CSR adjacency arrays shared by the decision-side engines.

The implication engine used to rebuild per-instance fanin/fanout/level
lists from the :class:`~repro.circuit.netlist.Circuit` on every
construction — O(nodes + edges) of allocation per engine, paid again in
every worker process and for every analyzer.  This module lowers a
circuit once into compressed-sparse-row form:

* ``types`` — per-node gate-type codes as ``bytes`` (a
  :class:`~repro.circuit.gates.GateType` is an ``IntEnum``, so the raw
  codes interoperate with every enum-keyed table),
* ``fanin_offsets``/``fanin_flat`` and ``fanout_offsets``/``fanout_flat``
  — the adjacency in CSR layout (``array('i')``),
* ``fanins``/``fanouts`` — immutable per-node row views of the same
  data, which is what CPython iterates fastest in the hot loop,
* ``levels`` — combinational level per node,
* ``const0``/``const1`` — constant nodes the engine presets,
* ``inputs`` — free INPUT nodes (witness extraction reads exactly
  these instead of type-scanning every node per SAT case),
* ``*_np`` — zero-copy read-only numpy views of the same buffers, for
  consumers that slice the adjacency with array arithmetic (the packed
  bitset reachability pass in :mod:`repro.circuit.topology`) rather than
  iterating rows.

The structure is read-only and cached on the circuit through
:meth:`~repro.circuit.netlist.Circuit.derived` (like the compiled
simulation plan), so every engine over the same netlist version shares
one copy and construction after the first is O(1).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

import numpy as np

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit

#: :meth:`Circuit.derived` cache key for the CSR arrays.
_DERIVED_KEY = "csr-arrays"


@dataclass(frozen=True)
class CsrArrays:
    """Read-only CSR view of one circuit (see module docstring)."""

    num_nodes: int
    types: bytes
    fanin_offsets: array
    fanin_flat: array
    fanout_offsets: array
    fanout_flat: array
    fanins: tuple[tuple[int, ...], ...]
    fanouts: tuple[tuple[int, ...], ...]
    levels: tuple[int, ...]
    const0: tuple[int, ...]
    const1: tuple[int, ...]
    inputs: tuple[int, ...]
    # Read-only numpy views: types/levels are copies of the scalar data,
    # the offset/flat views alias the ``array('i')`` buffers zero-copy.
    types_np: np.ndarray
    levels_np: np.ndarray
    fanin_offsets_np: np.ndarray
    fanin_flat_np: np.ndarray
    fanout_offsets_np: np.ndarray
    fanout_flat_np: np.ndarray


def _np_view(data: array) -> np.ndarray:
    view = np.frombuffer(data, dtype=np.int32) if len(data) else np.empty(
        0, dtype=np.int32
    )
    view.flags.writeable = False
    return view


def _csr(rows: list[tuple[int, ...]] | list[list[int]]) -> tuple[array, array]:
    offsets = array("i", [0] * (len(rows) + 1))
    total = 0
    for index, row in enumerate(rows):
        total += len(row)
        offsets[index + 1] = total
    flat = array("i", [0] * total)
    position = 0
    for row in rows:
        for entry in row:
            flat[position] = entry
            position += 1
    return offsets, flat


def _build(circuit: Circuit) -> CsrArrays:
    num_nodes = circuit.num_nodes
    fanins = tuple(tuple(row) for row in circuit.fanins)
    fanouts = tuple(
        tuple(circuit.fanouts(node)) for node in range(num_nodes)
    )
    fanin_offsets, fanin_flat = _csr(circuit.fanins)
    fanout_offsets, fanout_flat = _csr(list(fanouts))
    types = bytes(int(t) for t in circuit.types)
    levels = tuple(circuit.levels())
    types_np = np.frombuffer(types, dtype=np.uint8) if types else np.empty(
        0, dtype=np.uint8
    )
    types_np.flags.writeable = False
    levels_np = np.asarray(levels, dtype=np.int32)
    levels_np.flags.writeable = False
    return CsrArrays(
        num_nodes=num_nodes,
        types=types,
        fanin_offsets=fanin_offsets,
        fanin_flat=fanin_flat,
        fanout_offsets=fanout_offsets,
        fanout_flat=fanout_flat,
        fanins=fanins,
        fanouts=fanouts,
        levels=levels,
        const0=tuple(circuit.ids_of_type(GateType.CONST0)),
        const1=tuple(circuit.ids_of_type(GateType.CONST1)),
        inputs=tuple(circuit.ids_of_type(GateType.INPUT)),
        types_np=types_np,
        levels_np=levels_np,
        fanin_offsets_np=_np_view(fanin_offsets),
        fanin_flat_np=_np_view(fanin_flat),
        fanout_offsets_np=_np_view(fanout_offsets),
        fanout_flat_np=_np_view(fanout_flat),
    )


def csr_arrays(circuit: Circuit) -> CsrArrays:
    """The circuit's shared :class:`CsrArrays` (built once per version)."""
    return circuit.derived(_DERIVED_KEY, _build, persist="csr-arrays")
