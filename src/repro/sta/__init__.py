"""Subpackage repro.sta."""
