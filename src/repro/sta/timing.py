"""Static timing analysis over the register-to-register paths.

The paper's motivation: topological STA treats every FF-to-FF path as a
single-cycle constraint, which is too conservative when the path is
multi-cycle.  This module computes topological FF-to-FF delays so
:mod:`repro.sta.constraints` can show how much slack the detected
multi-cycle pairs release.

Delays are per gate type (unit delay by default); interconnect is ignored,
matching the abstraction level of the paper's circuit model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.gates import COMBINATIONAL_TYPES, GateType
from repro.circuit.netlist import Circuit


@dataclass(frozen=True)
class DelayModel:
    """Per-gate-type delays; anything unlisted uses ``default``."""

    default: float = 1.0
    per_type: dict[GateType, float] = field(default_factory=dict)
    #: OUTPUT markers and buffers are free by default
    free_types: frozenset[GateType] = frozenset(
        {GateType.OUTPUT, GateType.BUF}
    )

    def delay_of(self, gate_type: GateType) -> float:
        if gate_type in self.free_types:
            return 0.0
        return self.per_type.get(gate_type, self.default)


def arrival_times(circuit: Circuit, model: DelayModel | None = None) -> list[float]:
    """Topological arrival time per node, measured from FF outputs / PIs."""
    model = model or DelayModel()
    arrival = [0.0] * circuit.num_nodes
    for node in circuit.topo_order():
        gate_type = circuit.types[node]
        if gate_type not in COMBINATIONAL_TYPES or not circuit.fanins[node]:
            continue
        arrival[node] = model.delay_of(gate_type) + max(
            arrival[f] for f in circuit.fanins[node]
        )
    return arrival


def ff_pair_delays(
    circuit: Circuit, model: DelayModel | None = None
) -> dict[tuple[int, int], float]:
    """Maximum topological delay per connected (source FF, sink FF) pair.

    One forward sweep per source flip-flop: ``delay_from[n]`` is the longest
    path delay from the source's Q pin to node ``n`` (or ``-inf`` when
    unreachable).  The result maps ``(source, sink)`` to the delay of the
    longest path ending at the sink's D input.
    """
    model = model or DelayModel()
    order = circuit.topo_order()
    minus_inf = float("-inf")
    delays: dict[tuple[int, int], float] = {}
    next_state = {dff: circuit.next_state_node(dff) for dff in circuit.dffs}

    for source in circuit.dffs:
        delay_from = [minus_inf] * circuit.num_nodes
        delay_from[source] = 0.0
        for node in order:
            gate_type = circuit.types[node]
            if gate_type not in COMBINATIONAL_TYPES or not circuit.fanins[node]:
                continue
            best = max(delay_from[f] for f in circuit.fanins[node])
            if best != minus_inf:
                delay_from[node] = best + model.delay_of(gate_type)
        for sink, d_node in next_state.items():
            if delay_from[d_node] != minus_inf:
                delays[(source, sink)] = delay_from[d_node]
    return delays


def critical_ff_delay(circuit: Circuit, model: DelayModel | None = None) -> float:
    """The longest FF-to-FF topological delay (classic critical path)."""
    delays = ff_pair_delays(circuit, model)
    return max(delays.values()) if delays else 0.0
