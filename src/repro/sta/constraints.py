"""Applying detected multi-cycle pairs as timing constraints.

Quantifies the paper's motivation: every FF pair proven multi-cycle may be
given ``k`` clock periods instead of one, relaxing the timing constraints
used by synthesis/STA.  :func:`relaxation_report` compares the circuit's
timing before and after applying the detector's verdicts:

* per-pair required time ``k * period`` instead of ``period``,
* minimum feasible clock period with and without relaxation,
* slack distribution and the number of violating pairs at a given period.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.netlist import Circuit
from repro.core.result import DetectionResult
from repro.sta.timing import DelayModel, ff_pair_delays


@dataclass
class PairTiming:
    source: int
    sink: int
    delay: float
    allowed_cycles: int

    def slack(self, period: float) -> float:
        return self.allowed_cycles * period - self.delay


@dataclass
class RelaxationReport:
    circuit: Circuit
    pair_timings: list[PairTiming]
    #: smallest clock period meeting every single-cycle constraint
    min_period_baseline: float
    #: smallest clock period when multi-cycle pairs get k cycles
    min_period_relaxed: float

    @property
    def speedup(self) -> float:
        """Clock-frequency gain unlocked by multi-cycle relaxation."""
        if self.min_period_relaxed == 0.0:
            return 1.0
        return self.min_period_baseline / self.min_period_relaxed

    def violations_at(self, period: float, relaxed: bool = True) -> int:
        """Number of pairs with negative slack at ``period``."""
        count = 0
        for timing in self.pair_timings:
            cycles = timing.allowed_cycles if relaxed else 1
            if cycles * period - timing.delay < 0:
                count += 1
        return count

    def worst_slack(self, period: float, relaxed: bool = True) -> float:
        slacks = [
            (t.allowed_cycles if relaxed else 1) * period - t.delay
            for t in self.pair_timings
        ]
        return min(slacks) if slacks else 0.0


def relaxation_report(
    circuit: Circuit,
    detection: DetectionResult,
    model: DelayModel | None = None,
    multi_cycle_budget: int = 2,
) -> RelaxationReport:
    """Build the before/after timing comparison for one detection run.

    Multi-cycle pairs receive ``multi_cycle_budget`` cycles (the MC
    condition guarantees 2; callers holding k-cycle results may pass more
    per :mod:`repro.core.kcycle`).  Undecided and single-cycle pairs keep 1.
    """
    delays = ff_pair_delays(circuit, model)
    budget: dict[tuple[int, int], int] = {}
    for result in detection.pair_results:
        key = (result.pair.source, result.pair.sink)
        budget[key] = multi_cycle_budget if result.is_multi_cycle else 1

    timings = [
        PairTiming(source, sink, delay, budget.get((source, sink), 1))
        for (source, sink), delay in sorted(delays.items())
    ]
    min_baseline = max((t.delay for t in timings), default=0.0)
    min_relaxed = max((t.delay / t.allowed_cycles for t in timings), default=0.0)
    return RelaxationReport(circuit, timings, min_baseline, min_relaxed)
