"""Applying detected multi-cycle pairs as timing constraints.

Quantifies the paper's motivation: every FF pair proven multi-cycle may be
given ``k`` clock periods instead of one, relaxing the timing constraints
used by synthesis/STA.  :func:`relaxation_report` compares the circuit's
timing before and after applying the detector's verdicts:

* per-pair required time ``k * period`` instead of ``period``,
* minimum feasible clock period with and without relaxation,
* slack distribution and the number of violating pairs at a given period.

:func:`sdc_constraints` turns the verdicts into interchange form — SDC
``set_multicycle_path`` / ``set_false_path`` commands (plus a JSON
mirror) that downstream synthesis/STA tools consume directly.  When the
detector's hazard stage ran, flagged pairs are *not* relaxed: the MC
condition holds for settled values but a static hazard could latch a
transient, so the constraint is emitted commented-out with the reason.
Under ``--hazard-check exact`` the reason carries the three-way verdict
(glitch-proven / glitch-possible) and the JSON mirror grows a
``hazard_verdict`` field per pair — "safe" pairs relax normally even
when a bounding mode would have flagged them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.circuit.netlist import Circuit
from repro.core.result import CaseOutcome, DetectionResult
from repro.sta.timing import DelayModel, ff_pair_delays


@dataclass
class PairTiming:
    source: int
    sink: int
    delay: float
    allowed_cycles: int

    def slack(self, period: float) -> float:
        return self.allowed_cycles * period - self.delay


@dataclass
class RelaxationReport:
    circuit: Circuit
    pair_timings: list[PairTiming]
    #: smallest clock period meeting every single-cycle constraint
    min_period_baseline: float
    #: smallest clock period when multi-cycle pairs get k cycles
    min_period_relaxed: float

    @property
    def speedup(self) -> float:
        """Clock-frequency gain unlocked by multi-cycle relaxation."""
        if self.min_period_relaxed == 0.0:
            return 1.0
        return self.min_period_baseline / self.min_period_relaxed

    def violations_at(self, period: float, relaxed: bool = True) -> int:
        """Number of pairs with negative slack at ``period``."""
        count = 0
        for timing in self.pair_timings:
            cycles = timing.allowed_cycles if relaxed else 1
            if cycles * period - timing.delay < 0:
                count += 1
        return count

    def worst_slack(self, period: float, relaxed: bool = True) -> float:
        slacks = [
            (t.allowed_cycles if relaxed else 1) * period - t.delay
            for t in self.pair_timings
        ]
        return min(slacks) if slacks else 0.0


def relaxation_report(
    circuit: Circuit,
    detection: DetectionResult,
    model: DelayModel | None = None,
    multi_cycle_budget: int = 2,
) -> RelaxationReport:
    """Build the before/after timing comparison for one detection run.

    Multi-cycle pairs receive ``multi_cycle_budget`` cycles (the MC
    condition guarantees 2; callers holding k-cycle results may pass more
    per :mod:`repro.core.kcycle`).  Undecided and single-cycle pairs keep 1.
    """
    delays = ff_pair_delays(circuit, model)
    budget: dict[tuple[int, int], int] = {}
    for result in detection.pair_results:
        key = (result.pair.source, result.pair.sink)
        budget[key] = multi_cycle_budget if result.is_multi_cycle else 1

    timings = [
        PairTiming(source, sink, delay, budget.get((source, sink), 1))
        for (source, sink), delay in sorted(delays.items())
    ]
    min_baseline = max((t.delay for t in timings), default=0.0)
    min_relaxed = max((t.delay / t.allowed_cycles for t in timings), default=0.0)
    return RelaxationReport(circuit, timings, min_baseline, min_relaxed)


# ----------------------------------------------------------------------
# SDC emission.
# ----------------------------------------------------------------------
@dataclass
class SdcConstraint:
    """One emitted timing exception for a detected multi-cycle FF pair."""

    source: str
    sink: str
    #: "multicycle" (``set_multicycle_path``) or "false-path"
    #: (``set_false_path`` — every implication case contradicted, so no
    #: single-cycle transition between the FFs is possible at all).
    kind: str
    #: setup multiplier for "multicycle" constraints; 0 for false paths.
    cycles: int
    #: the hazard stage flagged this pair — the relaxation is *unsafe*
    #: (a static hazard could latch a transient) and the SDC command is
    #: emitted commented-out.
    hazard_flagged: bool = False
    #: the exact three-way verdict ("safe" / "glitch-possible" /
    #: "glitch-proven") when the detection ran ``--hazard-check exact``;
    #: ``None`` under the bounding modes.
    hazard_verdict: str | None = None

    @property
    def safe(self) -> bool:
        return not self.hazard_flagged


def sdc_constraints(
    detection: DetectionResult, multi_cycle_budget: int = 2
) -> list[SdcConstraint]:
    """Timing exceptions implied by one detection run, sorted by pair.

    Every proven multi-cycle pair yields one constraint.  A pair whose
    implication cases *all* ended in contradiction gets ``set_false_path``
    (the premise — sink toggling one cycle after the source — is
    structurally impossible); the rest get ``set_multicycle_path -setup
    multi_cycle_budget``.  Pairs flagged by the hazard stage (when it
    ran) are marked unsafe and rendered as comments by
    :func:`format_sdc`; undecided and single-cycle pairs yield nothing.
    """
    names = detection.circuit.names
    flagged = {
        (p.source, p.sink) for p in detection.hazard_flagged_pairs
    }
    verdicts = {
        (v.pair.source, v.pair.sink): v.verdict.value
        for v in detection.hazard_verdicts
    }
    constraints: list[SdcConstraint] = []
    for result in detection.multi_cycle_pairs:
        pair = (result.pair.source, result.pair.sink)
        all_contradicted = bool(result.cases) and all(
            case.outcome is CaseOutcome.CONTRADICTION
            for case in result.cases
        )
        constraints.append(
            SdcConstraint(
                source=names[result.pair.source],
                sink=names[result.pair.sink],
                kind="false-path" if all_contradicted else "multicycle",
                cycles=0 if all_contradicted else multi_cycle_budget,
                hazard_flagged=pair in flagged,
                hazard_verdict=verdicts.get(pair),
            )
        )
    constraints.sort(key=lambda c: (c.source, c.sink))
    return constraints


def _sdc_command(constraint: SdcConstraint) -> str:
    """The SDC command text for one constraint (without hazard gating)."""
    span = (
        f"-from [get_cells {{{constraint.source}}}] "
        f"-to [get_cells {{{constraint.sink}}}]"
    )
    if constraint.kind == "false-path":
        return f"set_false_path {span}"
    return (
        f"set_multicycle_path -setup {constraint.cycles} {span}\n"
        f"set_multicycle_path -hold {constraint.cycles - 1} {span}"
    )


def format_sdc(
    detection: DetectionResult,
    multi_cycle_budget: int = 2,
    constraints: list[SdcConstraint] | None = None,
) -> str:
    """Render a detection run as SDC text.

    Hazard-flagged pairs appear as commented-out commands with the
    reason, so the relaxation is visible but inert; when the hazard
    stage did not run, a header comment says the verdicts are
    implication-only.
    """
    if constraints is None:
        constraints = sdc_constraints(detection, multi_cycle_budget)
    lines = [
        f"# multi-cycle path constraints for {detection.circuit.name}",
        f"# engine: {detection.engine}; hazard check: {detection.hazard_mode}",
    ]
    if detection.hazard_mode == "off":
        lines.append(
            "# hazard stage was off: verdicts cover settled values only"
        )
    for constraint in constraints:
        command = _sdc_command(constraint)
        if constraint.hazard_flagged:
            reason = (
                constraint.hazard_verdict
                if constraint.hazard_verdict is not None
                else "hazard-flagged"
            )
            lines.append(
                f"# {reason}, not relaxed: "
                f"{constraint.source} -> {constraint.sink}"
            )
            lines.extend(f"# {line}" for line in command.splitlines())
        else:
            lines.append(command)
    return "\n".join(lines) + "\n"


def constraints_json(
    detection: DetectionResult,
    multi_cycle_budget: int = 2,
    constraints: list[SdcConstraint] | None = None,
) -> str:
    """The JSON interchange form of :func:`sdc_constraints`."""
    if constraints is None:
        constraints = sdc_constraints(detection, multi_cycle_budget)
    payload = {
        "circuit": detection.circuit.name,
        "engine": detection.engine,
        "hazard_mode": detection.hazard_mode,
        "multi_cycle_budget": multi_cycle_budget,
        "constraints": [
            {
                "source": c.source,
                "sink": c.sink,
                "kind": c.kind,
                "cycles": c.cycles,
                "hazard_flagged": c.hazard_flagged,
                "hazard_verdict": c.hazard_verdict,
                "safe": c.safe,
            }
            for c in constraints
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
