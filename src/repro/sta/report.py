"""Slack reports: per-pair timing tables and critical-path listings.

Where :mod:`repro.sta.constraints` aggregates (minimum period, speedup),
this module renders the detail a designer acts on: the worst-slack FF
pairs at a given clock period under multicycle constraints, and — via the
bounded path enumerator — the concrete critical path of any pair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.netlist import Circuit
from repro.circuit.paths import longest_path, path_delay
from repro.circuit.topology import FFPair
from repro.core.result import DetectionResult
from repro.sta.constraints import relaxation_report
from repro.sta.timing import DelayModel


@dataclass
class SlackLine:
    """One row of the slack table."""

    source: str
    sink: str
    delay: float
    allowed_cycles: int
    slack: float


def worst_slack_table(
    circuit: Circuit,
    detection: DetectionResult,
    period: float,
    model: DelayModel | None = None,
    limit: int = 20,
    multi_cycle_budget: int = 2,
) -> list[SlackLine]:
    """The ``limit`` worst-slack FF pairs at ``period`` (relaxed timing)."""
    report = relaxation_report(
        circuit, detection, model, multi_cycle_budget=multi_cycle_budget
    )
    lines = [
        SlackLine(
            source=circuit.names[timing.source],
            sink=circuit.names[timing.sink],
            delay=timing.delay,
            allowed_cycles=timing.allowed_cycles,
            slack=timing.slack(period),
        )
        for timing in report.pair_timings
    ]
    lines.sort(key=lambda line: line.slack)
    return lines[:limit]


def format_slack_table(lines: list[SlackLine], period: float) -> str:
    """Fixed-width rendering of a slack table."""
    header = (f"{'source':>12}  {'sink':>12}  {'delay':>6}  "
              f"{'cycles':>6}  {'slack':>7}")
    rows = [f"slack report at clock period {period:g}", header,
            "-" * len(header)]
    for line in lines:
        marker = "VIOLATED " if line.slack < 0 else ""
        rows.append(
            f"{line.source:>12}  {line.sink:>12}  {line.delay:>6.1f}  "
            f"{line.allowed_cycles:>6}  {line.slack:>7.2f}  {marker}"
        )
    return "\n".join(rows)


def critical_path_report(
    circuit: Circuit,
    pair: FFPair,
    model: DelayModel | None = None,
    max_paths: int = 10_000,
) -> str:
    """Human-readable listing of a pair's longest path."""
    path = longest_path(circuit, pair, model, max_paths)
    source = circuit.names[pair.source]
    sink = circuit.names[pair.sink]
    if path is None:
        return f"{source} -> {sink}: no combinational path"
    delay = path_delay(circuit, path, model)
    stops = " -> ".join(circuit.names[n] for n in path.nodes)
    return (f"critical path {source} -> {sink} (delay {delay:g}):\n"
            f"  {stops} -> [{sink}.D]")
