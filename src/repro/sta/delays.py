"""Per-gate min/max delay annotations (the hazard filter's sidecar).

The exact hazard classification (:mod:`repro.analysis.hazard_exact`) is
delay-independent: a glitch-proven pair can glitch under *some* delay
assignment.  When realistic per-gate delay intervals are known, many of
those glitches collapse — a pulse only forms at the sink when the
earliest and latest arrival of the source transition differ.  This
module loads those intervals from a sidecar JSON file::

    {
      "default": {"min": 1.0, "max": 1.0},
      "gates": {"u12": {"min": 0.8, "max": 2.5}}
    }

``default`` applies to every gate not listed under ``gates``; both keys
are optional (a missing default is the unit interval).  Gate names refer
to the *sequential* circuit; unknown names are rejected when a circuit
is supplied to :meth:`GateDelays.load`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.circuit.netlist import Circuit


@dataclass(frozen=True)
class DelayInterval:
    """Inclusive ``[min, max]`` propagation-delay bounds of one gate."""

    min: float
    max: float

    def __post_init__(self) -> None:
        if self.min < 0 or self.max < self.min:
            raise ValueError(
                f"invalid delay interval [{self.min}, {self.max}]"
            )


#: The delay-agnostic fallback: every gate takes exactly one unit.
UNIT_DELAY = DelayInterval(1.0, 1.0)


@dataclass
class GateDelays:
    """Per-gate delay intervals with a default fallback."""

    default: DelayInterval = UNIT_DELAY
    gates: dict[str, DelayInterval] = field(default_factory=dict)

    def interval(self, name: str) -> DelayInterval:
        """Delay interval of gate ``name`` (the default when unlisted)."""
        return self.gates.get(name, self.default)

    @classmethod
    def from_payload(cls, payload: object) -> GateDelays:
        """Build from a decoded sidecar payload (see module docstring)."""
        if not isinstance(payload, dict):
            raise ValueError("delay sidecar must be a JSON object")
        default = _interval(
            payload.get("default", {"min": 1.0, "max": 1.0}), "default"
        )
        raw_gates = payload.get("gates", {})
        if not isinstance(raw_gates, dict):
            raise ValueError('"gates" must map gate names to intervals')
        gates = {
            str(name): _interval(entry, str(name))
            for name, entry in raw_gates.items()
        }
        return cls(default=default, gates=gates)

    @classmethod
    def load(cls, path: Path, circuit: Circuit | None = None) -> GateDelays:
        """Load a sidecar file, validating gate names against ``circuit``."""
        delays = cls.from_payload(json.loads(path.read_text()))
        if circuit is not None:
            unknown = sorted(set(delays.gates) - set(circuit.names))
            if unknown:
                raise ValueError(
                    "delay sidecar names unknown gates: " + ", ".join(unknown)
                )
        return delays


def _interval(entry: object, context: str) -> DelayInterval:
    if not isinstance(entry, dict):
        raise ValueError(f"delay entry for {context!r} must be an object")
    try:
        low = float(entry["min"])
        high = float(entry["max"])
    except KeyError as missing:
        raise ValueError(
            f"delay entry for {context!r} lacks key {missing}"
        ) from None
    return DelayInterval(low, high)
