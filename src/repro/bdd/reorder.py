"""Static variable-order heuristics for the BDD baseline.

The symbolic method's cost is dominated by the variable order.  The
manager in :mod:`repro.bdd.bdd` uses fixed integer orders, so reordering
is done *statically*: choose a good order before building the node BDDs.
Two standard heuristics are provided:

* :func:`interleave_order` — current-state variables first, primary
  inputs after, in declaration order (the baseline's default);
* :func:`fanin_order` — a depth-first topological (Malik-style) ordering:
  variables are ranked by their first appearance in a DFS from the
  observation outputs, which keeps related support variables adjacent and
  typically shrinks the intermediate BDDs substantially.

:func:`estimate_bdd_cost` builds the node BDDs under a candidate order and
reports the peak manager size, which the tests use to verify that the
fanin order is no worse than a pessimal one on the suite circuits.
"""

from __future__ import annotations

from repro.bdd.bdd import BddManager
from repro.bdd.traversal import build_node_bdds
from repro.circuit.gates import GateType
from repro.circuit.timeframe import TimeFrameExpansion


def interleave_order(expansion: TimeFrameExpansion) -> dict[int, int]:
    """State variables first, then each frame's primary inputs."""
    var_of_input: dict[int, int] = {}
    index = 0
    for node in expansion.ff_at[0]:
        var_of_input[node] = index
        index += 1
    for frame_pis in expansion.pi_at:
        for node in frame_pis:
            var_of_input[node] = index
            index += 1
    return var_of_input


def fanin_order(expansion: TimeFrameExpansion) -> dict[int, int]:
    """Depth-first fanin ordering from the expansion's observation points.

    Walks the combinational cone of every next-state output and primary
    output depth-first; each free input gets its rank at first visit.
    Unreached inputs (outside every cone) are appended afterwards.
    """
    comb = expansion.comb
    order: dict[int, int] = {}
    visited = bytearray(comb.num_nodes)

    roots: list[int] = list(expansion.ff_at[-1])
    for frame in expansion.po_at:
        roots.extend(frame)

    def visit(start: int) -> None:
        stack = [start]
        while stack:
            node = stack.pop()
            if visited[node]:
                continue
            visited[node] = 1
            if comb.types[node] == GateType.INPUT:
                order[node] = len(order)
                continue
            # Reverse so the first fanin is explored first (true DFS).
            stack.extend(reversed(comb.fanins[node]))

    for root in roots:
        visit(root)
    for node in comb.inputs:
        if node not in order:
            order[node] = len(order)
    return order


def estimate_bdd_cost(
    expansion: TimeFrameExpansion,
    var_of_input: dict[int, int],
    node_limit: int | None = None,
) -> int:
    """Total manager nodes after building every node BDD under an order."""
    manager = BddManager()
    build_node_bdds(expansion.comb, manager, var_of_input, node_limit=node_limit)
    return manager.num_nodes


def choose_order(
    expansion: TimeFrameExpansion, budget_nodes: int = 500_000
) -> dict[int, int]:
    """Pick the cheaper of the two heuristics (bounded trial builds)."""
    candidates = [interleave_order(expansion), fanin_order(expansion)]
    best = candidates[0]
    best_cost: int | None = None
    for candidate in candidates:
        try:
            cost = estimate_bdd_cost(expansion, candidate, budget_nodes)
        except Exception:
            continue
        if best_cost is None or cost < best_cost:
            best, best_cost = candidate, cost
    return best
