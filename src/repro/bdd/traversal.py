"""Symbolic (BDD-based) multi-cycle detection — the baseline of ref. [8].

Builds BDDs for every node of the 2-time-frame expansion (state variables
first in the order, then the two frames' inputs) and checks, per FF pair,
whether::

    (FF_i(t) XOR FF_i(t+1)) AND (FF_j(t+1) XOR FF_j(t+2))

is the constant-false function.  Optionally the check is restricted to the
*reachable* state set computed by a classic symbolic forward traversal —
the feature that lets [8] find more multi-cycle pairs than assumed-
reachable methods, at a cost that does not scale (which is exactly why the
paper's implication-based method exists).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, validate
from repro.circuit.timeframe import expand
from repro.circuit.topology import FFPair, connected_ff_pairs
from repro.bdd.bdd import FALSE, TRUE, BddManager


class BddLimitExceeded(RuntimeError):
    """Raised when the manager grows beyond the configured node limit."""


def build_node_bdds(
    circuit: Circuit,
    manager: BddManager,
    var_of_input: dict[int, int],
    node_limit: int | None = None,
) -> list[int]:
    """BDD per node of a combinational circuit, in topological order."""
    if circuit.dffs:
        raise ValueError("build_node_bdds expects a combinational circuit")
    bdds = [FALSE] * circuit.num_nodes
    for node in circuit.topo_order():
        gate_type = circuit.types[node]
        if gate_type == GateType.INPUT:
            bdds[node] = manager.var(var_of_input[node])
            continue
        if gate_type == GateType.CONST0:
            bdds[node] = FALSE
            continue
        if gate_type == GateType.CONST1:
            bdds[node] = TRUE
            continue
        if gate_type == GateType.DFF:
            raise ValueError("build_node_bdds expects a combinational circuit")
        ins = [bdds[f] for f in circuit.fanins[node]]
        if gate_type in (GateType.BUF, GateType.OUTPUT):
            bdds[node] = ins[0]
        elif gate_type == GateType.NOT:
            bdds[node] = manager.apply_not(ins[0])
        elif gate_type == GateType.AND:
            bdds[node] = manager.and_all(ins)
        elif gate_type == GateType.NAND:
            bdds[node] = manager.apply_not(manager.and_all(ins))
        elif gate_type == GateType.OR:
            bdds[node] = manager.or_all(ins)
        elif gate_type == GateType.NOR:
            bdds[node] = manager.apply_not(manager.or_all(ins))
        elif gate_type == GateType.XOR or gate_type == GateType.XNOR:
            acc = ins[0]
            for operand in ins[1:]:
                acc = manager.apply_xor(acc, operand)
            if gate_type == GateType.XNOR:
                acc = manager.apply_not(acc)
            bdds[node] = acc
        elif gate_type == GateType.MUX:
            bdds[node] = manager.ite(ins[0], ins[2], ins[1])
        else:  # pragma: no cover - defensive
            raise ValueError(f"unhandled gate type {gate_type}")
        if node_limit is not None and manager.num_nodes > node_limit:
            raise BddLimitExceeded(
                f"BDD manager exceeded {node_limit} nodes at {circuit.names[node]!r}"
            )
    return bdds


@dataclass
class BddPairResult:
    pair: FFPair
    is_multi_cycle: bool


@dataclass
class BddDetectionResult:
    circuit: Circuit
    connected_pairs: int
    pair_results: list[BddPairResult]
    total_seconds: float
    reachable_states: int | None = None

    @property
    def multi_cycle_pairs(self) -> list[BddPairResult]:
        return [p for p in self.pair_results if p.is_multi_cycle]

    def multi_cycle_pair_names(self) -> list[tuple[str, str]]:
        names = self.circuit.names
        return sorted(
            (names[p.pair.source], names[p.pair.sink]) for p in self.multi_cycle_pairs
        )


class BddMcDetector:
    """Symbolic MC-pair detection, optionally restricted to reachable states."""

    def __init__(
        self,
        circuit: Circuit,
        use_reachability: bool = False,
        node_limit: int | None = 2_000_000,
    ) -> None:
        validate(circuit)
        self.circuit = circuit
        self.use_reachability = use_reachability
        self.node_limit = node_limit

    def prepare(self, expansion=None) -> None:
        """Build the node BDDs (and, optionally, the reachable set) once.

        Separated from :meth:`run` so per-pair callers — the pipeline's
        ``bdd`` decider — can amortise the symbolic construction and then
        call :meth:`analyze` pair by pair.  ``expansion`` may supply a
        shared 2-frame expansion to avoid re-expanding the circuit.
        """
        circuit = self.circuit
        self._expansion = expansion if expansion is not None else expand(
            circuit, frames=2
        )
        manager = BddManager()

        # Variable order: frame-0 state first, then frame-0 and frame-1 PIs.
        var_of_input: dict[int, int] = {}
        next_var = 0
        for node in self._expansion.ff_at[0]:
            var_of_input[node] = next_var
            next_var += 1
        self._state_vars = list(range(next_var))
        for frame_pis in self._expansion.pi_at:
            for node in frame_pis:
                var_of_input[node] = next_var
                next_var += 1

        self._bdds = build_node_bdds(
            self._expansion.comb, manager, var_of_input,
            node_limit=self.node_limit,
        )

        self._reachable = TRUE
        self.reachable_states: int | None = None
        if self.use_reachability:
            self._reachable = self._reachable_set(manager)
            self.reachable_states = manager.count_solutions(
                self._reachable, num_vars=len(circuit.dffs)
            )
        self._manager = manager

    def analyze(self, pair: FFPair) -> BddPairResult:
        """One symbolic MC check (requires :meth:`prepare` first)."""
        expansion = self._expansion
        manager = self._manager
        bdds = self._bdds
        source = expansion.ff_index(pair.source)
        sink = expansion.ff_index(pair.sink)
        toggle = manager.apply_xor(
            bdds[expansion.ff_at[0][source]], bdds[expansion.ff_at[1][source]]
        )
        changes = manager.apply_xor(
            bdds[expansion.ff_at[1][sink]], bdds[expansion.ff_at[2][sink]]
        )
        violation = manager.and_all([self._reachable, toggle, changes])
        return BddPairResult(pair, violation == FALSE)

    def run(self) -> BddDetectionResult:
        started = time.perf_counter()
        pairs = connected_ff_pairs(self.circuit)
        self.prepare()
        results = [self.analyze(pair) for pair in pairs]
        return BddDetectionResult(
            circuit=self.circuit,
            connected_pairs=len(pairs),
            pair_results=results,
            total_seconds=time.perf_counter() - started,
            reachable_states=self.reachable_states,
        )

    def _reachable_set(self, manager: BddManager) -> int:
        """Forward image computation from the all-states... no — from reset.

        Reset state: all flip-flops at 0 (the conventional assumption for
        benchmark circuits without explicit initialisation logic).  State
        variable ``k`` of the expansion doubles as the current-state
        variable here; next-state functions come from a 1-frame expansion
        sharing the same variable numbering.
        """
        circuit = self.circuit
        expansion = expand(circuit, frames=1)
        var_of_input: dict[int, int] = {}
        for k, node in enumerate(expansion.ff_at[0]):
            var_of_input[node] = k
        num_state = len(circuit.dffs)
        input_vars = []
        for node in expansion.pi_at[0]:
            var_of_input[node] = num_state + len(input_vars)
            input_vars.append(num_state + len(input_vars))
        bdds = build_node_bdds(
            expansion.comb, manager, var_of_input, node_limit=self.node_limit
        )
        next_state = [bdds[n] for n in expansion.ff_at[1]]

        # Reset: every FF at 0.
        reached = manager.and_all(manager.nvar(k) for k in range(num_state))
        frontier = reached
        while frontier != FALSE:
            # Image of the frontier under the transition functions.
            image = self._image(manager, frontier, next_state, input_vars, num_state)
            new_states = manager.apply_and(image, manager.apply_not(reached))
            reached = manager.apply_or(reached, image)
            frontier = new_states
        return reached

    def _image(
        self,
        manager: BddManager,
        states: int,
        next_state: list[int],
        input_vars: list[int],
        num_state: int,
    ) -> int:
        """Forward image via the monolithic transition relation."""
        # T(s, x, s') = AND_k (s'_k <-> delta_k(s, x)); s' vars are fresh.
        offset = num_state + len(input_vars)
        relation = states
        for k, delta in enumerate(next_state):
            relation = manager.apply_and(
                relation, manager.xnor(manager.var(offset + k), delta)
            )
            if self.node_limit is not None and manager.num_nodes > self.node_limit:
                raise BddLimitExceeded("transition relation blew up")
        quantified = manager.exists(
            relation, list(range(num_state)) + list(input_vars)
        )
        # Rename s' back to s (shift down by offset).
        return manager.rename(
            quantified, {offset + k: k for k in range(num_state)}
        )


def bdd_detect_multi_cycle_pairs(
    circuit: Circuit, use_reachability: bool = False
) -> BddDetectionResult:
    """Convenience wrapper: run the symbolic baseline end to end."""
    return BddMcDetector(circuit, use_reachability=use_reachability).run()
