"""Subpackage repro.bdd."""
