"""A from-scratch ROBDD package (substrate for the symbolic baseline [8]).

Reduced ordered binary decision diagrams with a shared unique table and a
computed-table cache.  Nodes are integers: ``0``/``1`` are the terminals,
every other node id indexes ``(var, low, high)`` triples.  Variables are
ordered by their integer index.

Supported operations: ``apply`` (AND/OR/XOR), ``ite``, negation,
restriction, existential/universal quantification, vector composition and
satisfiability queries — everything the symbolic multi-cycle baseline and
reachability analysis need.
"""

from __future__ import annotations

from typing import Iterable, Mapping

FALSE = 0
TRUE = 1


class BddManager:
    """Shared-node ROBDD manager with memoised operations."""

    #: variable index of the terminal nodes — larger than any real variable,
    #: which makes "topmost variable" computations uniform.
    _TERMINAL_VAR = 1 << 60

    def __init__(self) -> None:
        # Node storage; indices 0 and 1 are the terminals.
        self._var: list[int] = [self._TERMINAL_VAR, self._TERMINAL_VAR]
        self._low: list[int] = [-1, -1]
        self._high: list[int] = [-1, -1]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._cache: dict[tuple, int] = {}
        self.num_vars = 0

    # ------------------------------------------------------------------
    # Node construction.
    # ------------------------------------------------------------------
    def var(self, index: int) -> int:
        """BDD for the literal ``x_index``."""
        self.num_vars = max(self.num_vars, index + 1)
        return self._mk(index, FALSE, TRUE)

    def nvar(self, index: int) -> int:
        """BDD for the negated literal ``!x_index``."""
        self.num_vars = max(self.num_vars, index + 1)
        return self._mk(index, TRUE, FALSE)

    def _mk(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def top_var(self, node: int) -> int:
        return self._var[node]

    @property
    def num_nodes(self) -> int:
        return len(self._var)

    # ------------------------------------------------------------------
    # Core operations.
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f ? g : h``."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = ("ite", f, g, h)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        fv, gv, hv = self._var[f], self._var[g], self._var[h]
        top = min(fv, gv, hv)

        def cofactor(node: int, node_var: int, value: int) -> int:
            if node_var != top:
                return node
            return self._high[node] if value else self._low[node]

        low = self.ite(
            cofactor(f, fv, 0), cofactor(g, gv, 0), cofactor(h, hv, 0)
        )
        high = self.ite(
            cofactor(f, fv, 1), cofactor(g, gv, 1), cofactor(h, hv, 1)
        )
        result = self._mk(top, low, high)
        self._cache[key] = result
        return result

    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, TRUE, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.apply_not(g), g)

    def apply_not(self, f: int) -> int:
        return self.ite(f, FALSE, TRUE)

    def and_all(self, nodes: Iterable[int]) -> int:
        result = TRUE
        for node in nodes:
            result = self.apply_and(result, node)
            if result == FALSE:
                return FALSE
        return result

    def or_all(self, nodes: Iterable[int]) -> int:
        result = FALSE
        for node in nodes:
            result = self.apply_or(result, node)
            if result == TRUE:
                return TRUE
        return result

    def xnor(self, f: int, g: int) -> int:
        return self.apply_not(self.apply_xor(f, g))

    # ------------------------------------------------------------------
    # Restriction, quantification, composition.
    # ------------------------------------------------------------------
    def restrict(self, f: int, var: int, value: int) -> int:
        """Cofactor of ``f`` with ``x_var := value``."""
        if f <= 1:
            return f
        key = ("restrict", f, var, value)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        fv = self._var[f]
        if fv > var:
            result = f
        elif fv == var:
            result = self._high[f] if value else self._low[f]
        else:
            result = self._mk(
                fv,
                self.restrict(self._low[f], var, value),
                self.restrict(self._high[f], var, value),
            )
        self._cache[key] = result
        return result

    def exists(self, f: int, variables: Iterable[int]) -> int:
        """Existential quantification over ``variables``."""
        result = f
        for var in sorted(variables, reverse=True):
            result = self.apply_or(
                self.restrict(result, var, 0), self.restrict(result, var, 1)
            )
        return result

    def forall(self, f: int, variables: Iterable[int]) -> int:
        """Universal quantification over ``variables``."""
        result = f
        for var in sorted(variables, reverse=True):
            result = self.apply_and(
                self.restrict(result, var, 0), self.restrict(result, var, 1)
            )
        return result

    def compose(self, f: int, substitution: Mapping[int, int]) -> int:
        """Simultaneously substitute ``x_var := g`` for each mapping entry."""
        if f <= 1:
            return f
        key = ("compose", f, tuple(sorted(substitution.items())))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        fv = self._var[f]
        low = self.compose(self._low[f], substitution)
        high = self.compose(self._high[f], substitution)
        replacement = substitution.get(fv)
        if replacement is None:
            replacement = self.var(fv)
        result = self.ite(replacement, high, low)
        self._cache[key] = result
        return result

    def rename(self, f: int, mapping: Mapping[int, int]) -> int:
        """Substitute variables by variables (must preserve the order)."""
        return self.compose(f, {v: self.var(w) for v, w in mapping.items()})

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def is_false(self, f: int) -> bool:
        return f == FALSE

    def is_true(self, f: int) -> bool:
        return f == TRUE

    def satisfy_one(self, f: int) -> dict[int, int] | None:
        """One satisfying assignment ``{var: 0/1}`` or ``None``."""
        if f == FALSE:
            return None
        assignment: dict[int, int] = {}
        node = f
        while node != TRUE:
            var = self._var[node]
            if self._low[node] != FALSE:
                assignment[var] = 0
                node = self._low[node]
            else:
                assignment[var] = 1
                node = self._high[node]
        return assignment

    def count_solutions(self, f: int, num_vars: int | None = None) -> int:
        """Number of satisfying assignments over ``num_vars`` variables."""
        total_vars = self.num_vars if num_vars is None else num_vars
        cache: dict[int, int] = {}

        def weight(node: int) -> tuple[int, int]:
            """Return (solutions below node, var index of node or total)."""
            if node == FALSE:
                return 0, total_vars
            if node == TRUE:
                return 1, total_vars
            if node in cache:
                return cache[node], self._var[node]
            low_count, low_var = weight(self._low[node])
            high_count, high_var = weight(self._high[node])
            var = self._var[node]
            count = low_count * (1 << (low_var - var - 1)) + high_count * (
                1 << (high_var - var - 1)
            )
            cache[node] = count
            return count, var

        count, top = weight(f)
        return count * (1 << top)

    def evaluate(self, f: int, assignment: Mapping[int, int]) -> int:
        """Evaluate ``f`` under a full variable assignment."""
        node = f
        while node > 1:
            var = self._var[node]
            node = self._high[node] if assignment.get(var, 0) else self._low[node]
        return node

    def size(self, f: int) -> int:
        """Number of distinct internal nodes reachable from ``f``."""
        seen: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= 1 or node in seen:
                continue
            seen.add(node)
            stack.append(self._low[node])
            stack.append(self._high[node])
        return len(seen)
