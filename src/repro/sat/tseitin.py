"""Tseitin encoding of combinational circuits into CNF.

Every circuit node gets one SAT variable; each gate contributes the clauses
of its input/output consistency constraint.  Used by the SAT-based baseline
(:mod:`repro.sat.mc_sat`) to encode the 2-time-frame expansion once and
query it per FF pair under assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.sat.solver import CdclSolver


@dataclass
class CircuitEncoding:
    """CNF encoding of one combinational circuit."""

    circuit: Circuit
    solver: CdclSolver
    #: SAT variable (DIMACS index) per circuit node id.
    var_of: list[int]

    def lit(self, node: int, value: int) -> int:
        """Literal asserting ``node == value``."""
        var = self.var_of[node]
        return var if value else -var


def _encode_and(solver: CdclSolver, out: int, ins: list[int], invert: bool) -> None:
    """``out = AND(ins)`` (or NAND when ``invert``)."""
    out_lit = -out if invert else out
    for i in ins:
        solver.add_clause([-out_lit, i])
    solver.add_clause([out_lit] + [-i for i in ins])


def _encode_or(solver: CdclSolver, out: int, ins: list[int], invert: bool) -> None:
    """``out = OR(ins)`` (or NOR when ``invert``)."""
    out_lit = -out if invert else out
    for i in ins:
        solver.add_clause([out_lit, -i])
    solver.add_clause([-out_lit] + list(ins))


def _encode_xor2(solver: CdclSolver, out: int, a: int, b: int) -> None:
    """``out = a XOR b``."""
    solver.add_clause([-out, a, b])
    solver.add_clause([-out, -a, -b])
    solver.add_clause([out, -a, b])
    solver.add_clause([out, a, -b])


def _encode_eq(solver: CdclSolver, a: int, b: int, invert: bool = False) -> None:
    """``a == b`` (or ``a == !b`` when ``invert``)."""
    b_lit = -b if invert else b
    solver.add_clause([-a, b_lit])
    solver.add_clause([a, -b_lit])


def _encode_mux(solver: CdclSolver, out: int, select: int, d0: int, d1: int) -> None:
    """``out = select ? d1 : d0``."""
    solver.add_clause([select, -out, d0])
    solver.add_clause([select, out, -d0])
    solver.add_clause([-select, -out, d1])
    solver.add_clause([-select, out, -d1])


def encode_circuit(circuit: Circuit, solver: CdclSolver | None = None) -> CircuitEncoding:
    """Encode every node of a combinational circuit into ``solver``.

    The circuit must be combinational (e.g. a time-frame expansion); DFF
    nodes are rejected.
    """
    solver = solver or CdclSolver()
    var_of = [0] * circuit.num_nodes
    for node in range(circuit.num_nodes):
        var_of[node] = solver.new_var()

    for node in range(circuit.num_nodes):
        gate_type = circuit.types[node]
        out = var_of[node]
        ins = [var_of[f] for f in circuit.fanins[node]]
        if gate_type == GateType.INPUT:
            continue
        if gate_type == GateType.DFF:
            raise ValueError("encode_circuit expects a combinational circuit")
        if gate_type == GateType.CONST0:
            solver.add_clause([-out])
        elif gate_type == GateType.CONST1:
            solver.add_clause([out])
        elif gate_type in (GateType.BUF, GateType.OUTPUT):
            _encode_eq(solver, out, ins[0])
        elif gate_type == GateType.NOT:
            _encode_eq(solver, out, ins[0], invert=True)
        elif gate_type == GateType.AND:
            _encode_and(solver, out, ins, invert=False)
        elif gate_type == GateType.NAND:
            _encode_and(solver, out, ins, invert=True)
        elif gate_type == GateType.OR:
            _encode_or(solver, out, ins, invert=False)
        elif gate_type == GateType.NOR:
            _encode_or(solver, out, ins, invert=True)
        elif gate_type in (GateType.XOR, GateType.XNOR):
            acc = ins[0]
            for operand in ins[1:]:
                fresh = solver.new_var()
                _encode_xor2(solver, fresh, acc, operand)
                acc = fresh
            _encode_eq(solver, out, acc, invert=gate_type == GateType.XNOR)
        elif gate_type == GateType.MUX:
            _encode_mux(solver, out, ins[0], ins[1], ins[2])
        else:  # pragma: no cover - defensive
            raise ValueError(f"unhandled gate type {gate_type}")

    return CircuitEncoding(circuit, solver, var_of)
