"""DIMACS CNF import/export.

Lets the library interoperate with external SAT tooling: the Tseitin
encoding of a time-frame expansion (or any clause set) can be written in
standard DIMACS format, and DIMACS files can be solved with the built-in
CDCL solver.
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.sat.solver import CdclSolver


class DimacsFormatError(ValueError):
    """Raised on malformed DIMACS input."""


def parse_dimacs(text: str) -> tuple[int, list[list[int]]]:
    """Parse DIMACS CNF text into ``(num_vars, clauses)``.

    Tolerates missing/incorrect header counts (many generators get them
    wrong); comment lines (``c ...``) and ``%``/``0`` trailer lines are
    skipped.
    """
    num_vars = 0
    declared_clauses: int | None = None
    clauses: list[list[int]] = []
    current: list[int] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c") or line.startswith("%"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise DimacsFormatError(f"line {line_no}: bad header {line!r}")
            try:
                num_vars = int(parts[2])
                declared_clauses = int(parts[3])
            except ValueError:
                raise DimacsFormatError(
                    f"line {line_no}: non-numeric header {line!r}"
                ) from None
            continue
        for token in line.split():
            try:
                literal = int(token)
            except ValueError:
                raise DimacsFormatError(
                    f"line {line_no}: bad literal {token!r}"
                ) from None
            if literal == 0:
                # A bare "0" line is the SATLIB end-of-file trailer, so an
                # empty clause here is a terminator, not falsum.
                if current:
                    clauses.append(current)
                current = []
            else:
                num_vars = max(num_vars, abs(literal))
                current.append(literal)
    if current:
        clauses.append(current)
    if declared_clauses is not None and declared_clauses != len(clauses):
        # Header mismatch is common in the wild; keep the parsed clauses.
        pass
    return num_vars, clauses


def load_dimacs(path: str | Path) -> tuple[int, list[list[int]]]:
    """Read a DIMACS CNF file."""
    return parse_dimacs(Path(path).read_text())


def write_dimacs(
    num_vars: int,
    clauses: list[list[int]],
    path: str | Path | None = None,
    comments: list[str] | None = None,
) -> str:
    """Serialise clauses as DIMACS CNF; optionally write to ``path``."""
    out = io.StringIO()
    for comment in comments or []:
        out.write(f"c {comment}\n")
    out.write(f"p cnf {num_vars} {len(clauses)}\n")
    for clause in clauses:
        out.write(" ".join(str(l) for l in clause) + " 0\n")
    text = out.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def solver_from_dimacs(text: str) -> CdclSolver:
    """Build a :class:`CdclSolver` preloaded with a DIMACS formula."""
    num_vars, clauses = parse_dimacs(text)
    solver = CdclSolver()
    solver._ensure_vars(num_vars)
    for clause in clauses:
        if not solver.add_clause(clause):
            break
    return solver
