"""SAT-based miter equivalence checking and FF observability.

Two uses inside the library:

* **transformation validation** — the technology mapper and the benchmark
  generator are checked by building a miter between original and mapped
  circuits (primary outputs and next-state functions compared, matched by
  name) and proving it UNSAT with the built-in CDCL solver;
* **observability analysis** — :func:`ff_observable_at_outputs` asks
  whether toggling one flip-flop's output can ever change a primary
  output within one frame, which the extended Condition-2 analysis
  (:mod:`repro.core.extended`) needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.circuit.timeframe import expand
from repro.sat.solver import CdclSolver, SolveStatus
from repro.sat.tseitin import encode_circuit


@dataclass
class EquivalenceResult:
    equivalent: bool
    #: name of the first differing output / next-state function, if any
    differing_signal: str | None = None
    #: a distinguishing assignment over shared input/state names, if any
    counterexample: dict[str, int] | None = None


def check_sequential_equivalence_1step(
    golden: Circuit, revised: Circuit
) -> EquivalenceResult:
    """Combinational equivalence of outputs and next-state functions.

    Both circuits must have identically named primary inputs and
    flip-flops (the techmap and the bench round-trip preserve names).
    Because the state is compared transition-by-transition from *any*
    state, this is a sound and complete sequential equivalence check for
    same-state-encoding revisions.
    """
    golden_inputs = {golden.names[n] for n in golden.inputs}
    revised_inputs = {revised.names[n] for n in revised.inputs}
    if golden_inputs != revised_inputs:
        return EquivalenceResult(False, differing_signal="<input sets differ>")
    golden_ffs = {golden.names[n] for n in golden.dffs}
    revised_ffs = {revised.names[n] for n in revised.dffs}
    if golden_ffs != revised_ffs:
        return EquivalenceResult(False, differing_signal="<FF sets differ>")

    golden_exp = expand(golden, 1)
    revised_exp = expand(revised, 1)
    solver = CdclSolver()
    golden_enc = encode_circuit(golden_exp.comb, solver)
    revised_enc = encode_circuit(revised_exp.comb, solver)

    # Tie shared free inputs together (state@0 and PIs@0 match by name).
    shared_names: dict[str, tuple[int, int]] = {}
    golden_by_name = {golden_exp.comb.names[n]: n for n in golden_exp.comb.inputs}
    revised_by_name = {revised_exp.comb.names[n]: n for n in revised_exp.comb.inputs}
    for name, golden_node in golden_by_name.items():
        revised_node = revised_by_name[name]
        a = golden_enc.var_of[golden_node]
        b = revised_enc.var_of[revised_node]
        solver.add_clause([-a, b])
        solver.add_clause([a, -b])
        shared_names[name] = (golden_node, revised_node)

    # Primary outputs are matched by their *driver* signal name, which is
    # stable across the .bench and Verilog writers (the OUTPUT marker
    # node's own name is writer-specific).
    golden_outs = {
        golden.names[golden.fanins[po][0]]: golden_exp.po_at[0][k]
        for k, po in enumerate(golden.outputs)
    }
    revised_outs = {
        revised.names[revised.fanins[po][0]]: revised_exp.po_at[0][k]
        for k, po in enumerate(revised.outputs)
    }
    for k, dff in enumerate(golden.dffs):
        golden_outs[f"{golden.names[dff]}.next"] = golden_exp.ff_at[1][k]
    for k, dff in enumerate(revised.dffs):
        revised_outs[f"{revised.names[dff]}.next"] = revised_exp.ff_at[1][k]

    if set(golden_outs) != set(revised_outs):
        return EquivalenceResult(False, differing_signal="<output sets differ>")

    for name in sorted(golden_outs):
        a = golden_enc.var_of[golden_outs[name]]
        b = revised_enc.var_of[revised_outs[name]]
        miter = solver.new_var()
        # miter <-> (a XOR b)
        solver.add_clause([-miter, a, b])
        solver.add_clause([-miter, -a, -b])
        solver.add_clause([miter, -a, b])
        solver.add_clause([miter, a, -b])
        status = solver.solve([miter])
        if status is SolveStatus.SAT:
            counterexample = {
                shared: solver.model_value(golden_enc.var_of[node_a]) or 0
                for shared, (node_a, _node_b) in shared_names.items()
            }
            return EquivalenceResult(False, name, counterexample)
    return EquivalenceResult(True)


def ff_observable_at_outputs(circuit: Circuit, dff: int) -> bool:
    """Can flipping ``dff``'s output ever change a primary output?

    Builds a miter between two copies of the one-frame expansion that
    agree on every free input except the chosen flip-flop's state, which
    is forced to differ; SAT on any output miter means observable.  A
    circuit without primary outputs makes every FF trivially unobservable.
    """
    if circuit.types[dff] != GateType.DFF:
        raise ValueError("ff_observable_at_outputs expects a DFF node")
    if not circuit.outputs:
        return False
    expansion_a = expand(circuit, 1)
    expansion_b = expand(circuit, 1)
    solver = CdclSolver()
    enc_a = encode_circuit(expansion_a.comb, solver)
    enc_b = encode_circuit(expansion_b.comb, solver)

    index = expansion_a.ff_index(dff)
    target_a = expansion_a.ff_at[0][index]
    target_b = expansion_b.ff_at[0][index]
    by_name_a = {expansion_a.comb.names[n]: n for n in expansion_a.comb.inputs}
    by_name_b = {expansion_b.comb.names[n]: n for n in expansion_b.comb.inputs}
    for name, node_a in by_name_a.items():
        node_b = by_name_b[name]
        a = enc_a.var_of[node_a]
        b = enc_b.var_of[node_b]
        if node_a == target_a:
            solver.add_clause([a, b])
            solver.add_clause([-a, -b])  # forced to differ
        else:
            solver.add_clause([-a, b])
            solver.add_clause([a, -b])

    difference_lits = []
    for k in range(len(circuit.outputs)):
        a = enc_a.var_of[expansion_a.po_at[0][k]]
        b = enc_b.var_of[expansion_b.po_at[0][k]]
        diff = solver.new_var()
        solver.add_clause([-diff, a, b])
        solver.add_clause([-diff, -a, -b])
        solver.add_clause([diff, -a, b])
        solver.add_clause([diff, a, -b])
        difference_lits.append(diff)
    solver.add_clause(difference_lits)
    return solver.solve() is SolveStatus.SAT
