"""A from-scratch CDCL SAT solver (the substrate for the baseline of [9]).

The paper compares against Nakamura et al.'s SAT-based multi-cycle path
detector; no SAT solver may be imported here, so this module implements a
complete conflict-driven clause-learning solver:

* two-literal watching for unit propagation,
* 1-UIP conflict analysis with clause learning and non-chronological
  backjumping,
* VSIDS-style variable activities with exponential decay,
* phase saving and Luby-sequence restarts,
* incremental solving under assumptions (used to share one CNF of the
  2-frame expansion across all FF pairs).

Literals follow the DIMACS convention: variable ``v >= 1``, literal ``+v``
or ``-v``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import Enum


class SolveStatus(Enum):
    """Solver verdict (UNKNOWN only under a conflict limit)."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


_UNASSIGNED = -1


def _luby(index: int) -> int:
    """The reluctant-doubling (Luby) sequence 1 1 2 1 1 2 4 ... (0-indexed)."""
    size = 1
    exponent = 0
    while size < index + 1:
        exponent += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) // 2
        exponent -= 1
        index %= size
    return 1 << exponent


@dataclass
class SolverStats:
    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned_clauses: int = 0


class CdclSolver:
    """Conflict-driven clause-learning solver over DIMACS-style literals."""

    def __init__(self) -> None:
        self.num_vars = 0
        # Internal-literal clauses; a slot becomes None when a database
        # reduction deletes the learned clause living there.
        self.clauses: list[list[int] | None] = []
        self.watches: list[list[int]] = []          # internal lit -> clause ids
        self.values: list[int] = []                 # per var: 0/1/_UNASSIGNED
        self.levels: list[int] = []
        self.reasons: list[int] = []                # clause id or -1
        self.trail: list[int] = []                  # internal literals
        self.trail_lim: list[int] = []
        self.activity: list[float] = []
        self.phase: list[int] = []
        self.var_inc = 1.0
        self.var_decay = 0.95
        # Learned-clause bookkeeping for database reduction.
        self.is_learned: list[bool] = []
        self.clause_activity: list[float] = []
        self.clause_inc = 1.0
        self.max_learned = 4000
        self.stats = SolverStats()
        self._unsat = False
        self._qhead = 0
        # Lazy max-activity heap of (-activity, var); stale entries are
        # skipped at pop time (MiniSat-style order heap).
        self._order: list[tuple[float, int]] = []

    # ------------------------------------------------------------------
    # Encoding helpers: external literal <-> internal literal.
    # ------------------------------------------------------------------
    @staticmethod
    def _lit(ext: int) -> int:
        var = abs(ext) - 1
        return 2 * var + (1 if ext < 0 else 0)

    @staticmethod
    def _ext(lit: int) -> int:
        var = lit // 2 + 1
        return -var if lit & 1 else var

    def new_var(self) -> int:
        """Allocate a fresh variable; returns its (positive) DIMACS index."""
        self.num_vars += 1
        self.values.append(_UNASSIGNED)
        self.levels.append(0)
        self.reasons.append(-1)
        self.activity.append(0.0)
        self.phase.append(0)
        self.watches.append([])
        self.watches.append([])
        heapq.heappush(self._order, (0.0, self.num_vars - 1))
        return self.num_vars

    def _ensure_vars(self, max_var: int) -> None:
        while self.num_vars < max_var:
            self.new_var()

    # ------------------------------------------------------------------
    # Clause management.
    # ------------------------------------------------------------------
    def add_clause(self, ext_clause: list[int]) -> bool:
        """Add a clause (at decision level 0); returns False if root-UNSAT."""
        if self._unsat:
            return False
        self._cancel_until(0)
        if ext_clause:
            self._ensure_vars(max(abs(l) for l in ext_clause))
        seen: set[int] = set()
        clause: list[int] = []
        for ext in ext_clause:
            lit = self._lit(ext)
            if lit ^ 1 in seen:
                return True  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            value = self._lit_value(lit)
            if value == 1 and self.levels[lit // 2] == 0:
                return True  # already satisfied at root
            if value == 0 and self.levels[lit // 2] == 0:
                continue  # falsified at root: drop literal
            clause.append(lit)
        if not clause:
            self._unsat = True
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], -1):
                self._unsat = True
                return False
            conflict = self._propagate()
            if conflict != -1:
                self._unsat = True
                return False
            return True
        clause_id = len(self.clauses)
        self.clauses.append(clause)
        self.is_learned.append(False)
        self.clause_activity.append(0.0)
        self.watches[clause[0] ^ 1].append(clause_id)
        self.watches[clause[1] ^ 1].append(clause_id)
        return True

    # ------------------------------------------------------------------
    # Assignment primitives.
    # ------------------------------------------------------------------
    def _lit_value(self, lit: int) -> int:
        value = self.values[lit // 2]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value ^ (lit & 1)

    def _enqueue(self, lit: int, reason: int) -> bool:
        value = self._lit_value(lit)
        if value == 0:
            return False
        if value == 1:
            return True
        var = lit // 2
        self.values[var] = 1 ^ (lit & 1)
        self.levels[var] = len(self.trail_lim)
        self.reasons[var] = reason
        self.trail.append(lit)
        return True

    def _propagate(self) -> int:
        """Unit propagation; returns a conflicting clause id or -1."""
        head = self._qhead
        trail = self.trail
        while head < len(trail):
            lit = trail[head]
            head += 1
            self.stats.propagations += 1
            # Enqueuing ``lit`` falsifies ``lit ^ 1``; clauses watching that
            # literal are registered under ``watches[(lit ^ 1) ^ 1]``.
            false_lit = lit ^ 1
            watch_list = self.watches[lit]
            new_watch_list = []
            i = 0
            conflict = -1
            while i < len(watch_list):
                clause_id = watch_list[i]
                i += 1
                clause = self.clauses[clause_id]
                if clause is None:
                    continue  # deleted by a database reduction
                # Normalise: make clause[1] the false literal.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) == 1:
                    new_watch_list.append(clause_id)
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) != 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watches[clause[1] ^ 1].append(clause_id)
                        moved = True
                        break
                if moved:
                    continue
                new_watch_list.append(clause_id)
                if not self._enqueue(first, clause_id):
                    # Conflict: keep the remaining watchers and stop.
                    new_watch_list.extend(watch_list[i:])
                    conflict = clause_id
                    break
            self.watches[lit] = new_watch_list
            if conflict != -1:
                self._qhead = len(trail)
                return conflict
        self._qhead = head
        return -1

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP).
    # ------------------------------------------------------------------
    def _bump_var(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(self.num_vars):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100
            self._order = [(-self.activity[v], v) for v in range(self.num_vars)]
            heapq.heapify(self._order)
        else:
            heapq.heappush(self._order, (-self.activity[var], var))

    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """Return (learned clause, backjump level); clause[0] is the UIP."""
        learned: list[int] = [0]  # placeholder for the asserting literal
        seen = bytearray(self.num_vars)
        counter = 0
        lit = -1
        index = len(self.trail) - 1
        reason = conflict
        current_level = len(self.trail_lim)

        while True:
            # Reason clauses keep their asserted literal at position 0, so
            # resolution skips it; the conflict clause contributes all lits.
            clause = self.clauses[reason]
            assert clause is not None  # reasons are locked against deletion
            if self.is_learned[reason]:
                self._bump_clause(reason)
            for k in range(0 if lit == -1 else 1, len(clause)):
                q = clause[k]
                var = q // 2
                if not seen[var] and self.levels[var] > 0:
                    seen[var] = 1
                    self._bump_var(var)
                    if self.levels[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(q)
            # Find the next literal to resolve on.
            while not seen[self.trail[index] // 2]:
                index -= 1
            lit = self.trail[index]
            index -= 1
            var = lit // 2
            seen[var] = 0
            counter -= 1
            if counter == 0:
                break
            reason = self.reasons[var]

        learned[0] = lit ^ 1
        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest level in the clause.
        max_k = 1
        for k in range(2, len(learned)):
            if self.levels[learned[k] // 2] > self.levels[learned[max_k] // 2]:
                max_k = k
        learned[1], learned[max_k] = learned[max_k], learned[1]
        return learned, self.levels[learned[1] // 2]

    def _bump_clause(self, clause_id: int) -> None:
        self.clause_activity[clause_id] += self.clause_inc
        if self.clause_activity[clause_id] > 1e100:
            for cid in range(len(self.clauses)):
                self.clause_activity[cid] *= 1e-100
            self.clause_inc *= 1e-100

    def _reduce_db(self) -> None:
        """Drop the less active half of the learned clauses.

        Binary clauses and clauses currently acting as a reason are kept.
        Deleted slots become ``None``; stale watch entries are skipped and
        garbage-collected during propagation.
        """
        locked = {self.reasons[lit // 2] for lit in self.trail}
        candidates = [
            cid
            for cid, clause in enumerate(self.clauses)
            if clause is not None
            and self.is_learned[cid]
            and len(clause) > 2
            and cid not in locked
        ]
        if not candidates:
            return
        candidates.sort(key=lambda cid: self.clause_activity[cid])
        for cid in candidates[: len(candidates) // 2]:
            self.clauses[cid] = None

    def _num_learned(self) -> int:
        return sum(
            1
            for cid, clause in enumerate(self.clauses)
            if clause is not None and self.is_learned[cid]
        )

    def _cancel_until(self, level: int) -> None:
        if len(self.trail_lim) <= level:
            return
        bound = self.trail_lim[level]
        for lit in reversed(self.trail[bound:]):
            var = lit // 2
            self.phase[var] = self.values[var]
            self.values[var] = _UNASSIGNED
            self.reasons[var] = -1
            heapq.heappush(self._order, (-self.activity[var], var))
        del self.trail[bound:]
        del self.trail_lim[level:]
        self._qhead = len(self.trail)

    # ------------------------------------------------------------------
    # Decisions.
    # ------------------------------------------------------------------
    def _decide(self) -> int:
        """Pick an unassigned variable by activity; -1 when all assigned."""
        order = self._order
        values = self.values
        activity = self.activity
        while order:
            negated_activity, var = heapq.heappop(order)
            if values[var] == _UNASSIGNED and -negated_activity == activity[var]:
                return 2 * var + (1 if self.phase[var] == 0 else 0)
        # Heap exhausted (stale entries only): fall back to a linear scan.
        for var in range(self.num_vars):
            if values[var] == _UNASSIGNED:
                heapq.heappush(order, (-activity[var], var))
                return 2 * var + (1 if self.phase[var] == 0 else 0)
        return -1

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: list[int] | None = None,
        conflict_limit: int | None = None,
    ) -> SolveStatus:
        """Decide satisfiability under ``assumptions`` (DIMACS literals)."""
        if self._unsat:
            return SolveStatus.UNSAT
        self._cancel_until(0)
        conflict = self._propagate()
        if conflict != -1:
            self._unsat = True
            return SolveStatus.UNSAT

        assumption_lits = [self._lit(a) for a in (assumptions or [])]
        for ext in assumptions or []:
            self._ensure_vars(abs(ext))

        restart_count = 0
        conflicts_until_restart = 32 * _luby(restart_count)
        conflicts_since_restart = 0
        total_conflicts = 0

        while True:
            conflict = self._propagate()
            if conflict != -1:
                self.stats.conflicts += 1
                total_conflicts += 1
                conflicts_since_restart += 1
                if conflict_limit is not None and total_conflicts > conflict_limit:
                    self._cancel_until(0)
                    return SolveStatus.UNKNOWN
                if len(self.trail_lim) <= len(assumption_lits):
                    # Conflict inside (or below) the assumption prefix.
                    self._cancel_until(0)
                    return SolveStatus.UNSAT
                learned, backjump = self._analyze(conflict)
                backjump = max(backjump, len(assumption_lits))
                self._cancel_until(backjump)
                if len(learned) == 1:
                    self._cancel_until(0)
                    if not self._enqueue(learned[0], -1):
                        self._unsat = True
                        return SolveStatus.UNSAT
                    if self._propagate() != -1:
                        self._unsat = True
                        return SolveStatus.UNSAT
                    # Re-establish the assumption prefix from scratch.
                    if not self._apply_assumptions(assumption_lits):
                        return SolveStatus.UNSAT
                else:
                    clause_id = len(self.clauses)
                    self.clauses.append(learned)
                    self.is_learned.append(True)
                    self.clause_activity.append(self.clause_inc)
                    self.watches[learned[0] ^ 1].append(clause_id)
                    self.watches[learned[1] ^ 1].append(clause_id)
                    self.stats.learned_clauses += 1
                    self._enqueue(learned[0], clause_id)
                self.var_inc /= self.var_decay
                self.clause_inc /= 0.999
                if (self.stats.learned_clauses % 64 == 0
                        and self._num_learned() > self.max_learned):
                    self._reduce_db()
                continue

            if conflicts_since_restart >= conflicts_until_restart:
                self.stats.restarts += 1
                restart_count += 1
                conflicts_since_restart = 0
                conflicts_until_restart = 32 * _luby(restart_count)
                self._cancel_until(len(assumption_lits))
                continue

            if len(self.trail_lim) < len(assumption_lits):
                lit = assumption_lits[len(self.trail_lim)]
                value = self._lit_value(lit)
                if value == 0:
                    self._cancel_until(0)
                    return SolveStatus.UNSAT
                self.trail_lim.append(len(self.trail))
                if value == _UNASSIGNED:
                    self._enqueue(lit, -1)
                continue

            decision = self._decide()
            if decision == -1:
                return SolveStatus.SAT
            self.stats.decisions += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(decision, -1)

    def _apply_assumptions(self, assumption_lits: list[int]) -> bool:
        for lit in assumption_lits:
            value = self._lit_value(lit)
            if value == 0:
                self._cancel_until(0)
                return False
            self.trail_lim.append(len(self.trail))
            if value == _UNASSIGNED:
                self._enqueue(lit, -1)
            if self._propagate() != -1:
                self._cancel_until(0)
                return False
        return True

    # ------------------------------------------------------------------
    # Model access.
    # ------------------------------------------------------------------
    def model_value(self, var: int) -> int | None:
        """Value of DIMACS variable ``var`` in the last SAT model."""
        if var > self.num_vars:
            return None
        value = self.values[var - 1]
        return None if value == _UNASSIGNED else value

    def model(self) -> dict[int, int]:
        """The last model as ``{var: 0/1}`` (unassigned vars omitted)."""
        return {
            v + 1: self.values[v]
            for v in range(self.num_vars)
            if self.values[v] != _UNASSIGNED
        }
