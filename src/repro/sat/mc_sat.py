"""The conventional SAT-based multi-cycle detector (baseline, ref. [9]).

Nakamura et al. formulate the MC condition as propositional satisfiability:
a pair ``(FF_i, FF_j)`` is multi-cycle iff

    FF_i(t) != FF_i(t+1)  AND  FF_j(t+1) != FF_j(t+2)

is unsatisfiable over the 2-time-frame expansion (all states reachable).
Here the expansion is Tseitin-encoded once; each FF gets two *difference*
variables (``source toggles``, ``sink stays``) and every pair is a single
incremental solve under two assumptions.

This module exists as the comparison point of Table 1: it must agree with
the implication-based detector on MC-pair counts while being slower.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.circuit.netlist import Circuit, validate
from repro.circuit.timeframe import TimeFrameExpansion, expand
from repro.circuit.topology import FFPair, connected_ff_pairs
from repro.sat.solver import CdclSolver, SolveStatus
from repro.sat.tseitin import encode_circuit


@dataclass
class SatPairResult:
    pair: FFPair
    is_multi_cycle: bool
    #: None when decided; set when the conflict limit was exhausted.
    unknown: bool = False


@dataclass
class SatDetectionResult:
    circuit: Circuit
    connected_pairs: int
    pair_results: list[SatPairResult]
    total_seconds: float

    @property
    def multi_cycle_pairs(self) -> list[SatPairResult]:
        return [p for p in self.pair_results if p.is_multi_cycle]

    def multi_cycle_pair_names(self) -> list[tuple[str, str]]:
        names = self.circuit.names
        return sorted(
            (names[p.pair.source], names[p.pair.sink]) for p in self.multi_cycle_pairs
        )


class SatMcDetector:
    """SAT-based MC-pair detection.

    Two modes:

    * ``"incremental"`` — one shared Tseitin encoding of the 2-frame
      expansion; each pair is an assumption-based solve that benefits from
      clauses learned on earlier pairs (a modern formulation).
    * ``"per-pair"`` — a fresh solver and encoding per pair, modelling the
      conventional method of [9] (one CNF instance per FF pair).  This is
      the comparison point of the paper's Table 1.
    """

    def __init__(
        self,
        circuit: Circuit,
        include_self_loops: bool = True,
        conflict_limit: int | None = None,
        mode: str = "incremental",
        expansion: TimeFrameExpansion | None = None,
    ) -> None:
        if mode not in ("incremental", "per-pair"):
            raise ValueError(f"unknown mode {mode!r}")
        validate(circuit)
        if expansion is not None and expansion.frames < 2:
            raise ValueError("SAT MC detection needs a 2-frame expansion")
        self.circuit = circuit
        self.include_self_loops = include_self_loops
        self.conflict_limit = conflict_limit
        self.mode = mode
        self._shared_expansion = expansion
        self._prepare()

    def _prepare(self) -> None:
        # The expansion is pure and may be shared across pairs and even
        # detectors; only the solver + encoding are per-pair in [9] mode.
        if self._shared_expansion is not None:
            self.expansion = self._shared_expansion
        else:
            self.expansion = expand(self.circuit, frames=2)
        self.encoding = encode_circuit(self.expansion.comb)
        solver = self.encoding.solver
        exp = self.expansion
        self._toggle_var: dict[int, int] = {}
        self._stable_var: dict[int, int] = {}
        for index, dff in enumerate(self.circuit.dffs):
            ff_t = exp.ff_at[0][index]
            ff_t1 = exp.ff_at[1][index]
            ff_t2 = exp.ff_at[2][index]
            toggles = solver.new_var()
            self._encode_xor_flag(solver, toggles, ff_t, ff_t1)
            self._toggle_var[dff] = toggles
            changes = solver.new_var()
            self._encode_xor_flag(solver, changes, ff_t1, ff_t2)
            self._stable_var[dff] = changes

    def _encode_xor_flag(self, solver: CdclSolver, flag: int, node_a: int, node_b: int) -> None:
        """``flag <-> (node_a != node_b)`` over encoded circuit nodes."""
        a = self.encoding.var_of[node_a]
        b = self.encoding.var_of[node_b]
        solver.add_clause([-flag, a, b])
        solver.add_clause([-flag, -a, -b])
        solver.add_clause([flag, -a, b])
        solver.add_clause([flag, a, -b])

    def analyze(self, pair: FFPair) -> SatPairResult:
        """One SAT call: UNSAT means multi-cycle."""
        if self.mode == "per-pair":
            self._prepare()  # fresh solver + encoding, as in [9]
        assumptions = [self._toggle_var[pair.source], self._stable_var[pair.sink]]
        status = self.encoding.solver.solve(
            assumptions, conflict_limit=self.conflict_limit
        )
        if status is SolveStatus.UNKNOWN:
            return SatPairResult(pair, is_multi_cycle=False, unknown=True)
        return SatPairResult(pair, is_multi_cycle=status is SolveStatus.UNSAT)

    def run(self) -> SatDetectionResult:
        started = time.perf_counter()
        pairs = connected_ff_pairs(
            self.circuit, include_self_loops=self.include_self_loops
        )
        results = [self.analyze(pair) for pair in pairs]
        return SatDetectionResult(
            circuit=self.circuit,
            connected_pairs=len(pairs),
            pair_results=results,
            total_seconds=time.perf_counter() - started,
        )


def sat_detect_multi_cycle_pairs(
    circuit: Circuit, include_self_loops: bool = True, mode: str = "incremental"
) -> SatDetectionResult:
    """Convenience wrapper: run the SAT baseline end to end."""
    return SatMcDetector(
        circuit, include_self_loops=include_self_loops, mode=mode
    ).run()
