"""Subpackage repro.sat."""
