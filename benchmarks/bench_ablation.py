"""Experiment A1 — ablations of the pipeline's design choices.

The paper's speed comes from stage layering (cheap simulation first,
implication second, search last) plus optional static learning and the
backtrack limit.  Each ablation here quantifies one choice:

* random simulation on/off (Table 2's premise),
* static learning on/off (used by the paper on the hardest circuits),
* backtrack-limit sweep (undecided pairs vs effort),
* simulation word count (patterns per round).
"""

from __future__ import annotations


import pytest

from repro.core.detector import DetectorOptions, detect_multi_cycle_pairs
from repro.reporting.tables import format_table

from conftest import PROFILE, record_report
from repro.bench_gen.suite import suite

_CIRCUITS = suite(PROFILE)
_IDS = [c.name for c in _CIRCUITS]
_ABLATION_CIRCUIT = _CIRCUITS[-1]  # largest in profile


@pytest.mark.parametrize("use_sim", [True, False], ids=["sim", "nosim"])
def test_random_sim_ablation(benchmark, use_sim):
    options = DetectorOptions(use_random_sim=use_sim)
    result = benchmark(detect_multi_cycle_pairs, _ABLATION_CIRCUIT, options)
    assert result.connected_pairs > 0


@pytest.mark.parametrize("learning", [False, True], ids=["plain", "learned"])
def test_static_learning_ablation(benchmark, learning):
    options = DetectorOptions(static_learning=learning)
    result = benchmark(detect_multi_cycle_pairs, _ABLATION_CIRCUIT, options)
    if learning:
        assert result.learned_implications >= 0


@pytest.mark.parametrize("limit", [0, 5, 50, 500])
def test_backtrack_limit_sweep(benchmark, limit):
    options = DetectorOptions(backtrack_limit=limit)
    result = benchmark(detect_multi_cycle_pairs, _ABLATION_CIRCUIT, options)
    # A smaller limit may only add undecided pairs, never flip verdicts.
    assert result.connected_pairs > 0


@pytest.mark.parametrize("words", [1, 4, 16])
def test_sim_words_sweep(benchmark, words):
    options = DetectorOptions(sim_words=words)
    result = benchmark(detect_multi_cycle_pairs, _ABLATION_CIRCUIT, options)
    assert result.connected_pairs > 0


def test_ablation_invariants_and_report(benchmark, bench_circuits):
    """Verdicts must be identical across all ablation settings; only the
    cost and the undecided set may move."""
    rows = []
    references = benchmark.pedantic(
        lambda: [detect_multi_cycle_pairs(c) for c in bench_circuits],
        rounds=1, iterations=1,
    )
    for circuit, reference in zip(bench_circuits, references):
        variants = {
            "baseline": reference,
            "no-sim": detect_multi_cycle_pairs(
                circuit, DetectorOptions(use_random_sim=False)
            ),
            "learned": detect_multi_cycle_pairs(
                circuit, DetectorOptions(static_learning=True)
            ),
        }
        for name, variant in variants.items():
            if name != "baseline":
                assert (variant.multi_cycle_pair_names()
                        == reference.multi_cycle_pair_names()), (
                    f"{name} changed verdicts on {circuit.name}"
                )
        rows.append([
            circuit.name,
            len(reference.multi_cycle_pairs),
            variants["baseline"].total_seconds,
            variants["no-sim"].total_seconds,
            variants["learned"].total_seconds,
        ])
    record_report(format_table(
        "Ablation A1: verdict-preserving variants (CPU seconds)",
        ["circuit", "MC-pair", "baseline", "no-sim", "learned"],
        rows,
        ["All variants classify every pair identically."],
    ))
