"""Experiment X4 — delay-fault testing with multi-cycle budgets (§1, [10]).

The introduction lists "ATPG for delay faults" among the users of
multi-cycle information.  This experiment runs launch-on-capture
transition-fault ATPG and counts how many detected faults sit entirely on
multi-cycle register-to-register paths — those need at-speed testing only
against the relaxed clock.
"""

from __future__ import annotations

import pytest

from repro.core.detector import detect_multi_cycle_pairs
from repro.atpg.transition import (
    TransitionAtpg,
    transition_relaxation_summary,
)
from repro.reporting.tables import format_table

from conftest import PROFILE, record_report
from repro.bench_gen.suite import suite

_CIRCUITS = suite(PROFILE)[:4]
_IDS = [c.name for c in _CIRCUITS]


@pytest.mark.parametrize("circuit", _CIRCUITS, ids=_IDS)
def test_transition_atpg_cost(benchmark, circuit):
    atpg = TransitionAtpg(circuit)
    report = benchmark(atpg.run)
    assert report.results


def test_transition_relaxation_report(benchmark, bench_circuits):
    def run_all():
        rows = []
        for circuit in bench_circuits[:4]:
            detection = detect_multi_cycle_pairs(circuit)
            summary = transition_relaxation_summary(circuit, detection)
            rows.append([
                circuit.name, summary.total_faults, summary.detected,
                summary.untestable, summary.relaxed,
            ])
            assert summary.relaxed <= summary.detected
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    record_report(format_table(
        "X4: transition faults vs multi-cycle budgets",
        ["circuit", "faults", "detected", "untestable", "relaxed"],
        rows,
        ["relaxed = detected faults lying only on multi-cycle paths "
         "(at-speed test may use the relaxed clock)."],
    ))
