"""Experiment B1 — the baseline landscape ([8] BDD vs [9] SAT vs ours).

Reproduces the paper's qualitative claims:

* the symbolic method agrees on small circuits but its cost explodes with
  size (it is skipped above a node budget),
* the SAT-based method agrees everywhere but is slower than the
  implication-based method, increasingly so on larger circuits,
* restricting to reachable states ([8]'s capability) can only find *more*
  multi-cycle pairs.
"""

from __future__ import annotations

import pytest

from repro.bdd.traversal import BddLimitExceeded, BddMcDetector
from repro.core.detector import detect_multi_cycle_pairs
from repro.sat.mc_sat import sat_detect_multi_cycle_pairs
from repro.reporting.tables import format_table

from conftest import PROFILE, record_report
from repro.bench_gen.suite import suite

_CIRCUITS = suite(PROFILE)
_IDS = [c.name for c in _CIRCUITS]
#: keep the exploding baselines bounded
_BDD_MAX_GATES = 200
_SAT_MAX_GATES = 1500


@pytest.mark.parametrize(
    "circuit", [c for c in _CIRCUITS if c.num_gates <= _BDD_MAX_GATES],
    ids=[c.name for c in _CIRCUITS if c.num_gates <= _BDD_MAX_GATES],
)
def test_bdd_baseline(benchmark, circuit):
    detector = BddMcDetector(circuit, node_limit=5_000_000)
    result = benchmark(detector.run)
    reference = detect_multi_cycle_pairs(circuit)
    assert result.multi_cycle_pair_names() == reference.multi_cycle_pair_names()


@pytest.mark.parametrize(
    "circuit", [c for c in _CIRCUITS if c.num_gates <= _SAT_MAX_GATES],
    ids=[c.name for c in _CIRCUITS if c.num_gates <= _SAT_MAX_GATES],
)
def test_sat_incremental_baseline(benchmark, circuit):
    result = benchmark(sat_detect_multi_cycle_pairs, circuit,
                       mode="incremental")
    reference = detect_multi_cycle_pairs(circuit)
    assert result.multi_cycle_pair_names() == reference.multi_cycle_pair_names()


def test_reachability_finds_superset(benchmark, bench_circuits):
    """[8] with reachable states may only ADD multi-cycle pairs."""
    eligible = [c for c in bench_circuits
                if c.num_gates <= _BDD_MAX_GATES and len(c.dffs) <= 24]

    def run_both():
        outcomes = []
        for circuit in eligible:
            try:
                outcomes.append((
                    circuit,
                    BddMcDetector(circuit).run(),
                    BddMcDetector(circuit, use_reachability=True).run(),
                ))
            except BddLimitExceeded:
                continue
        return outcomes

    rows = []
    for circuit, assumed, reachable in benchmark.pedantic(
        run_both, rounds=1, iterations=1
    ):
        assumed_set = set(assumed.multi_cycle_pair_names())
        reachable_set = set(reachable.multi_cycle_pair_names())
        assert assumed_set <= reachable_set
        rows.append([
            circuit.name, len(assumed_set), len(reachable_set),
            reachable.reachable_states,
        ])
    if rows:
        record_report(format_table(
            "Baseline B1: assumed-reachable vs exact reachability ([8])",
            ["circuit", "MC (all states)", "MC (reachable)", "|reachable|"],
            rows,
            ["Exact reachability can only add multi-cycle pairs."],
        ))
