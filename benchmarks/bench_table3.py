"""Experiment T3 — the paper's Table 3: static hazard checking.

Counts multi-cycle pairs before hazard checking and after validation by
static sensitization and static co-sensitization, with the checking CPU
time.  The reproduced shape:

    pairs(before) >= pairs(sensitize) >= pairs(co-sensitize)

(co-sensitization over-approximates the exact sensitization condition, so
it flags more pairs as potentially hazardous).
"""

from __future__ import annotations

import pytest

from repro.circuit.techmap import techmap
from repro.core.detector import detect_multi_cycle_pairs
from repro.core.hazard import check_hazards
from repro.core.sensitization import SensitizationMode
from repro.reporting.tables import run_table3

from conftest import PROFILE, record_report
from repro.bench_gen.suite import suite

_CIRCUITS = [techmap(c) for c in suite(PROFILE)]
_IDS = [c.name for c in _CIRCUITS]
_DETECTIONS = {c.name: detect_multi_cycle_pairs(c) for c in _CIRCUITS}


@pytest.mark.parametrize("mode", list(SensitizationMode),
                         ids=[m.value for m in SensitizationMode])
@pytest.mark.parametrize("circuit", _CIRCUITS, ids=_IDS)
def test_hazard_checking(benchmark, circuit, mode):
    detection = _DETECTIONS[circuit.name]
    result = benchmark(check_hazards, circuit, detection, mode)
    assert len(result.reports) == len(detection.multi_cycle_pairs)


def test_table3_report(benchmark, bench_circuits):
    table = benchmark.pedantic(run_table3, args=(bench_circuits,),
                               rounds=1, iterations=1)
    record_report(table.format())
    before, sensitize, cosensitize = (row[1] for row in table.rows)
    assert before >= sensitize >= cosensitize


def test_hazard_method_comparison(benchmark, bench_circuits):
    """Three independently derived hazard checks side by side: static
    sensitization, static co-sensitization (paper §5) and Eichelberger
    ternary simulation (dynamic spot check)."""
    from repro.core.ternary_hazard import ternary_check_hazards
    from repro.reporting.tables import format_table

    def run_all():
        rows = []
        for circuit in _CIRCUITS:
            detection = _DETECTIONS[circuit.name]
            before = len(detection.multi_cycle_pairs)
            sens = check_hazards(
                circuit, detection, SensitizationMode.STATIC_SENSITIZATION
            )
            cosens = check_hazards(
                circuit, detection, SensitizationMode.STATIC_CO_SENSITIZATION
            )
            ternary, _ = ternary_check_hazards(circuit, detection)
            ternary_flagged = sum(1 for r in ternary if r.has_potential_hazard)
            rows.append([
                circuit.name, before,
                len(sens.flagged_pairs), ternary_flagged,
                len(cosens.flagged_pairs),
            ])
            # Ternary (per-witness) never flags beyond co-sensitization.
            assert ternary_flagged <= len(cosens.flagged_pairs)
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    record_report(format_table(
        "Hazard checks compared: flagged MC pairs per method",
        ["circuit", "MC-pair", "sensitize", "ternary", "co-sensitize"],
        rows,
        ["sensitize/co-sensitize: §5 path conditions; ternary: "
         "Eichelberger X-propagation on case witnesses."],
    ))
