"""Experiment P1 — pipeline executor: serial vs parallel decision stage.

Times the full detection pipeline at ``workers=1`` against ``workers=N``
(N = CPU count, capped at 4) on the selected suite profile, asserts the
classifications are byte-identical (``pair_records``), and records the
wall times to ``BENCH_pipeline.json`` next to this file.

On one core the parallel run is expected to *lose* (process spawn plus
expansion pickling with no concurrency to amortise them); the point of
the record is the crossover on multi-core machines and the invariance
check that sharding never changes a verdict.

``pytest benchmarks/bench_pipeline.py --benchmark-only`` runs it alone.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.detector import DetectorOptions, MultiCycleDetector

from conftest import PROFILE, record_report
from repro.bench_gen.suite import suite

_RESULT_PATH = Path(__file__).parent.parent / "BENCH_pipeline.json"
#: at least 2 so the sharded path is exercised even on one core.
_WORKERS = max(2, min(4, os.cpu_count() or 1))

_CIRCUITS = suite(PROFILE)
_IDS = [c.name for c in _CIRCUITS]


def _run(circuit, workers: int):
    options = DetectorOptions(workers=workers)
    started = time.perf_counter()
    result = MultiCycleDetector(circuit, options).run()
    return result, time.perf_counter() - started


@pytest.mark.parametrize("circuit", _CIRCUITS, ids=_IDS)
def test_pipeline_serial(benchmark, circuit):
    result = benchmark(lambda: _run(circuit, workers=1)[0])
    assert result.connected_pairs >= len(result.multi_cycle_pairs)


@pytest.mark.parametrize("circuit", _CIRCUITS, ids=_IDS)
def test_pipeline_parallel(benchmark, circuit):
    result = benchmark.pedantic(
        lambda: _run(circuit, workers=_WORKERS)[0], rounds=1, iterations=1
    )
    assert result.connected_pairs >= len(result.multi_cycle_pairs)


def test_pipeline_report(bench_circuits):
    """Serial vs parallel wall time per circuit, written to JSON."""
    entries = []
    lines = [
        "Pipeline executor: serial vs parallel decision stage",
        f"{'circuit':>10}  {'pairs':>6}  {'serial(s)':>10}  "
        f"{'workers=' + str(_WORKERS) + '(s)':>14}  {'speedup':>8}",
    ]
    for circuit in bench_circuits:
        serial, serial_seconds = _run(circuit, workers=1)
        parallel, parallel_seconds = _run(circuit, workers=_WORKERS)
        assert serial.pair_records() == parallel.pair_records(), (
            f"parallel run changed a verdict on {circuit.name}"
        )
        speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
        entries.append(
            {
                "circuit": circuit.name,
                "connected_pairs": serial.connected_pairs,
                "multi_cycle_pairs": len(serial.multi_cycle_pairs),
                "serial_seconds": round(serial_seconds, 6),
                "parallel_seconds": round(parallel_seconds, 6),
                "speedup": round(speedup, 3),
            }
        )
        lines.append(
            f"{circuit.name:>10}  {serial.connected_pairs:>6}  "
            f"{serial_seconds:>10.3f}  {parallel_seconds:>14.3f}  "
            f"{speedup:>8.2f}"
        )
    _RESULT_PATH.write_text(
        json.dumps(
            {
                "profile": PROFILE,
                "workers": _WORKERS,
                "cpu_count": os.cpu_count(),
                "results": entries,
            },
            indent=2,
        )
        + "\n"
    )
    lines.append(f"  written to {_RESULT_PATH.name}")
    record_report("\n".join(lines))
