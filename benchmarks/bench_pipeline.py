"""Experiment P1 — pipeline executor and stage-1 simulation throughput.

Two measurements per circuit of the selected suite profile, recorded to
``BENCH_pipeline.json`` next to the repo root:

* **Executor**: the full detection pipeline at ``workers=1`` against
  ``workers=N`` (N = CPU count, capped at 4), with the classifications
  asserted byte-identical (``pair_records``).  Below
  ``parallel_threshold`` surviving pairs the decision stage falls back
  to in-process serial automatically; the ``auto_serial`` flag records
  whether that happened, since a fallback run measures dispatch
  avoidance rather than concurrency.
* **Stage-1 engine**: sustained random-simulation throughput
  (``patterns_per_sec``) over a fixed round budget using the shipping
  engine — compiled plan, reused simulators, round batching — against
  the pre-optimisation engine (``patterns_per_sec_python_fresh``): the
  per-node python loop with a fresh simulator every round.  Their ratio
  (``sim_speedup``) is what the CI regression gate falls back to when
  the baseline was recorded on different hardware.
* **Decision stage**: surviving pairs settled per second by the shared
  decision session (``decision_pairs_per_sec``, from the same survivors
  the pipeline's decide stage sees), plus the hardware-independent ratio
  ``decision_speedup`` — launch-prefix sharing on against off (full
  premise re-derived per case), measured back-to-back on one session
  engine.  The regression gate applies the same same-hardware /
  cross-hardware metric choice as for stage 1.
* **Decide kernel**: the packed bit-parallel implication closure
  (``decide_speedup``) — all four ``(a, b)`` cases of every surviving
  pair evaluated 64 lanes per word in one shared closure — against the
  scalar per-case loop (checkpoint, three-literal premise, target
  readback, X-stability probe, backtrack) over the *same* cases on one
  engine.  Search is excluded on both sides, so the ratio isolates the
  closure kernels and is hardware-independent; both kernels must
  classify every case identically.
* **Hazard stage**: detected multi-cycle pairs validated per second by
  the ternary checker (``hazard_pairs_per_sec``, full check including
  witness search), plus the hardware-independent ``hazard_speedup`` —
  the packed bit-parallel verdict sweep against the scalar per-case dict
  evaluation over the *same* precomputed witness lanes, so the ratio
  isolates the evaluation kernels.
* **Exact hazard stage**: the SAT-backed three-way classifier over the
  same detected multi-cycle pairs — ``hazard_disagreement`` counts
  pairs where the sensitization/co-sensitization bounds disagreed and
  ``exact_resolution_fraction`` the share the dual-rail SAT encoding
  settled to a definite safe / glitch-proven verdict.  The fraction is
  a pure completeness property (no timing in it), so the regression
  gate requires exactly 1.0 on every suite circuit.
* **Topology stage**: the packed-bitset reachability pass (cold reach
  build + pair extraction, warm CSR — the CSR is shared with the
  decision engines) against the per-sink set-BFS reference
  (``topology_speedup``).  The profile circuits are too small for the
  bitset pass to matter (numpy call overhead floors at ~0.2 ms), so the
  report also carries a fixed ``topology_probe`` on syn6000 where the
  asymptotic win is visible; the probe costs milliseconds regardless of
  profile.

* **Implication DB**: cold build time of the compiled global implication
  database on the decider's 2-frame expansion (``db_build_seconds``,
  with ``db_keys``/``db_edges``), and the stage-2 proved-pair counts
  without (``implication_proved``) and with (``implication_proved_db``)
  the database — the DB run must classify identically and never prove
  fewer pairs; ``implication_proved_db`` is the hardware-independent
  count the regression gate tracks.

* **Artifact store**: cold against warm full-detection wall time on a
  fixed syn6000 probe sharing one content-addressed store directory
  (``warm_speedup``, back-to-back on one machine so the gate applies on
  any hardware; the warm run's hit/miss counters prove SimPlan, FF-reach
  and implication-DB builds were loaded, not rebuilt), plus the ECO
  probe: one gate-type flip re-analysed incrementally against the prior
  run's pair-record bundle, recording ``eco_re_decide_fraction`` — the
  share of decide survivors the incremental path actually re-decided.

Every timed section runs one warmup iteration first and is clocked with
``time.perf_counter``.  Per-stage wall times come from the structured
trace (``stage_end`` events), not ad-hoc timers.

``pytest benchmarks/bench_pipeline.py --benchmark-only`` runs it alone.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.circuit.csr import csr_arrays
from repro.circuit.timeframe import expand_cached
from repro.circuit.topology import (
    build_sink_reach,
    connected_ff_pairs,
    connected_ff_pairs_bfs,
    prefers_bfs,
)
from repro.core.detector import DetectorOptions, MultiCycleDetector
from repro.core.random_filter import random_filter
from repro.core.session import DecisionSession
from repro.core.ternary_hazard import TernaryHazardChecker
from repro.core.trace import Tracer
from repro.logic.bitsim import BitSimulator, simulate_three_frames

from conftest import PROFILE, record_report
from repro.bench_gen.suite import suite, spec_by_name
from repro.bench_gen.synth import generate

_RESULT_PATH = Path(__file__).parent.parent / "BENCH_pipeline.json"
#: at least 2 so the sharded path is exercised even on one core.
_WORKERS = max(2, min(4, os.cpu_count() or 1))
#: fixed round budget for the sustained stage-1 throughput measurement.
_SIM_ROUNDS = 128
_SIM_WORDS = 4
_ROUND_BATCH = 8
#: fixed circuit for the topology scaling probe, independent of profile.
_TOPOLOGY_PROBE = "syn6000"

_CIRCUITS = suite(PROFILE)
_IDS = [c.name for c in _CIRCUITS]


def _run(circuit, workers: int, tracer: Tracer | None = None,
         options: DetectorOptions | None = None):
    options = options or DetectorOptions(workers=workers)
    started = time.perf_counter()
    result = MultiCycleDetector(circuit, options, tracer=tracer).run()
    return result, time.perf_counter() - started


def _implication_metrics(circuit, base_result) -> dict[str, float | int]:
    """Implication-DB build cost and the stage-2 proved-pair delta.

    ``db_build_seconds`` times one cold probe+close+compile of the global
    database on the decider's 2-frame expansion.  ``implication_proved``
    / ``implication_proved_db`` count pairs the implication stage settled
    without / with the database; the DB run must never prove fewer."""
    from repro.analysis import build_implication_db
    from repro.core.result import Classification, Stage

    def proved(result) -> int:
        return sum(
            1
            for p in result.pair_results
            if p.stage is Stage.IMPLICATION
            and p.classification is not Classification.UNDECIDED
        )

    comb = expand_cached(circuit, frames=2).comb
    build_implication_db(comb)  # warmup
    db = build_implication_db(comb)
    with_db, _ = _run(
        circuit, workers=1, options=DetectorOptions(implication_db=True)
    )
    proved_base, proved_db = proved(base_result), proved(with_db)
    verdicts = [
        (p.pair.source, p.pair.sink, p.classification)
        for p in base_result.pair_results
    ]
    verdicts_db = [
        (p.pair.source, p.pair.sink, p.classification)
        for p in with_db.pair_results
    ]
    assert verdicts == verdicts_db, (
        f"implication DB changed a verdict on {circuit.name}"
    )
    assert proved_db >= proved_base, (
        f"implication DB proved fewer pairs on {circuit.name}: "
        f"{proved_db} < {proved_base}"
    )
    return {
        "db_build_seconds": round(db.build_seconds, 6),
        "db_keys": db.num_keys,
        "db_edges": db.num_edges,
        "implication_proved": proved_base,
        "implication_proved_db": proved_db,
    }


def _sustained_compiled(circuit) -> float:
    """Seconds for ``_SIM_ROUNDS`` rounds on the shipping stage-1 engine:
    compiled plan, width-cached simulators, round batching."""
    rng = np.random.default_rng(2002)
    sources = circuit.inputs + circuit.dffs
    pis = circuit.inputs
    sims: dict[int, BitSimulator] = {}
    started = time.perf_counter()
    done = 0
    batch = 1
    while done < _SIM_ROUNDS:
        k = min(batch, _SIM_ROUNDS - done)
        width = k * _SIM_WORDS
        sim = sims.get(width)
        if sim is None:
            sim = BitSimulator(circuit, width, plan="compiled")
            sims[width] = sim
        if sources:
            sim.values[sources] = rng.integers(
                0, 1 << 64, size=(len(sources), width), dtype=np.uint64
            )
        sim.comb_eval()
        sim.clock()
        sim.state_matrix()
        if pis:
            sim.values[pis] = rng.integers(
                0, 1 << 64, size=(len(pis), width), dtype=np.uint64
            )
        sim.comb_eval()
        sim.clock()
        sim.state_matrix()
        done += k
        batch = min(batch * 2, _ROUND_BATCH)
    return time.perf_counter() - started


def _sustained_python_fresh(circuit) -> float:
    """Seconds for ``_SIM_ROUNDS`` rounds on the pre-optimisation engine:
    per-node python loop, fresh simulator every round, no batching."""
    rng = np.random.default_rng(2002)
    started = time.perf_counter()
    for _ in range(_SIM_ROUNDS):
        sim = BitSimulator(circuit, _SIM_WORDS, plan="python")
        simulate_three_frames(circuit, rng, _SIM_WORDS, sim=sim)
    return time.perf_counter() - started


def _sustained_decision(circuit) -> tuple[int, float, float]:
    """(survivors, shared_seconds, fresh_seconds) for the decision stage.

    Decides the pipeline's actual surviving pairs on one session engine,
    launch-prefix sharing on and off, back to back — the off run
    re-derives the full three-assumption premise per case, so the ratio
    isolates what the shared-launch session buys, independent of
    hardware."""
    pairs = connected_ff_pairs(circuit)
    survivors = random_filter(
        circuit, pairs, words=_SIM_WORDS, round_batch=_ROUND_BATCH
    ).survivors
    expansion = expand_cached(circuit, frames=2)

    def timed(share_prefix: bool) -> float:
        session = DecisionSession(expansion, share_prefix=share_prefix)
        started = time.perf_counter()
        session.decide_group(survivors)
        return time.perf_counter() - started

    timed(True)  # warmup (expansion + CSR caches)
    timed(False)
    return len(survivors), timed(True), timed(False)


def _sustained_packed_decision(circuit) -> dict[str, float | int]:
    """Decide-kernel isolation: scalar per-case closure vs packed lanes.

    Builds the decision stage's actual case list — four ``(a, b)``
    cases per surviving pair, each the premise
    ``FF_i(t)=a, FF_i(t+1)=1-a, FF_j(t+1)=b`` with target ``FF_j(t+2)``
    — and classifies every case twice, back to back on one machine:

    * scalar: one :class:`ImplicationEngine`, per case
      checkpoint → ``assume_all`` → target readback → X-stability
      probe → backtrack (what the session pays per case without the
      pre-pass, search excluded);
    * packed: one :class:`PackedImplicationEngine` closure per
      ``MAX_LANES`` block — ``close_matrix`` + conflict/target
      readback + one batched probe ``extend`` (what the pre-pass
      pays, same classification rules).

    The classifications must match case for case; the ratio
    (``decide_speedup``) isolates the closure kernels and is
    hardware-independent.  With no survivors both timings are pure
    noise, so the ratio records neutral 1.0 (same convention as
    ``decision_speedup``)."""
    from repro.atpg.implication import ImplicationEngine
    from repro.atpg.packed_implication import (
        MAX_LANES,
        PackedImplicationEngine,
    )

    pairs = connected_ff_pairs(circuit)
    survivors = random_filter(
        circuit, pairs, words=_SIM_WORDS, round_batch=_ROUND_BATCH
    ).survivors
    if not survivors:
        return {
            "decide_cases": 0, "decide_scalar_seconds": 0.0,
            "decide_packed_seconds": 0.0, "decide_speedup": 1.0,
        }
    expansion = expand_cached(circuit, frames=2)
    comb = expansion.comb
    ff_at = expansion.ff_at
    cases = []
    for pair in survivors:
        source_index = expansion.ff_index(pair.source)
        sink_index = expansion.ff_index(pair.sink)
        for a in (0, 1):
            for b in (0, 1):
                cases.append((
                    [
                        (ff_at[0][source_index], a),
                        (ff_at[1][source_index], 1 - a),
                        (ff_at[1][sink_index], b),
                    ],
                    ff_at[2][sink_index],
                    b,
                ))

    def scalar_kernel() -> list[str]:
        engine = ImplicationEngine(comb)
        out = []
        for literals, target, b in cases:
            mark = engine.checkpoint()
            if not engine.assume_all(literals):
                out.append("conflict")
            else:
                value = engine.value(target)
                if value == b:
                    out.append("implied")
                elif value == 1 - b:
                    out.append("open")
                elif engine.assume(target, 1 - b):
                    out.append("open")
                else:
                    out.append("implied")
            engine.backtrack(mark)
        return out

    def packed_kernel() -> list[str]:
        engine = PackedImplicationEngine(comb)
        out = []
        for start in range(0, len(cases), MAX_LANES):
            block = cases[start:start + MAX_LANES]
            lanes = len(block)
            nodes = np.array(
                [[n for n, _ in lits] for lits, _, _ in block], dtype=np.intp
            )
            values = np.array(
                [[v for _, v in lits] for lits, _, _ in block], dtype=np.uint8
            )
            targets = np.array([t for _, t, _ in block], dtype=np.intp)
            engine.close_matrix(nodes, values)
            lane_ids = np.arange(lanes)
            conflicted = engine.conflict_lanes(lane_ids)
            known, value = engine.read_nodes(targets, lane_ids)
            open_lanes = np.flatnonzero(~conflicted & (known == 0))
            probe_conflict = np.zeros(lanes, dtype=bool)
            if len(open_lanes):
                engine.extend(
                    (int(lane), int(targets[lane]), 1 - block[lane][2])
                    for lane in open_lanes
                )
                probe_conflict[open_lanes] = engine.conflict_lanes(open_lanes)
            for lane in range(lanes):
                b = block[lane][2]
                if conflicted[lane]:
                    out.append("conflict")
                elif known[lane]:
                    out.append("implied" if value[lane] == b else "open")
                elif probe_conflict[lane]:
                    out.append("implied")
                else:
                    out.append("open")
        return out

    scalar_kernel()  # warmup (CSR + expansion caches)
    packed_kernel()  # warmup (plan lowering + scratch buffers)
    started = time.perf_counter()
    reference = scalar_kernel()
    scalar_seconds = time.perf_counter() - started
    started = time.perf_counter()
    candidate = packed_kernel()
    packed_seconds = time.perf_counter() - started
    assert candidate == reference, (
        f"packed decide kernel changed a case verdict on {circuit.name}"
    )
    return {
        "decide_cases": len(cases),
        "decide_scalar_seconds": round(scalar_seconds, 6),
        "decide_packed_seconds": round(packed_seconds, 6),
        "decide_speedup": round(
            scalar_seconds / packed_seconds if packed_seconds else 0.0, 3
        ),
    }


def _sustained_hazard(circuit, detection) -> dict[str, float | int]:
    """Hazard-stage metrics over the run's detected multi-cycle pairs.

    ``hazard_seconds`` / ``hazard_pairs_per_sec`` time the full packed
    check (witness search included).  ``hazard_speedup`` isolates the
    verdict kernels: scalar against packed evaluation of the *same*
    precomputed witness lanes, back to back — hardware-independent."""
    checker = TernaryHazardChecker(circuit)
    pairs = detection.multi_cycle_pairs
    lanes = checker.collect_lanes(pairs)
    if not lanes:
        return {
            "hazard_pairs": len(pairs), "hazard_lanes": 0,
            "hazard_seconds": 0.0, "hazard_pairs_per_sec": 0.0,
            "hazard_speedup": 0.0,
        }
    checker.packed_lane_verdicts(lanes)  # warmup (simulator buffers)
    checker.scalar_lane_verdicts(lanes)
    started = time.perf_counter()
    checker.scalar_lane_verdicts(lanes)
    scalar_seconds = time.perf_counter() - started
    started = time.perf_counter()
    checker.packed_lane_verdicts(lanes)
    packed_seconds = time.perf_counter() - started
    started = time.perf_counter()
    checker.check_pairs(pairs)
    full_seconds = time.perf_counter() - started
    return {
        "hazard_pairs": len(pairs),
        "hazard_lanes": len(lanes),
        "hazard_seconds": round(full_seconds, 6),
        "hazard_pairs_per_sec": round(
            len(pairs) / full_seconds if full_seconds else 0.0
        ),
        "hazard_speedup": round(
            scalar_seconds / packed_seconds if packed_seconds else 0.0, 3
        ),
    }


def _exact_hazard_metrics(circuit, detection) -> dict[str, float | int]:
    """Exact SAT-backed hazard classification over the detected MC pairs.

    ``hazard_disagreement`` counts pairs where the sensitization and
    co-sensitization bounds disagreed; ``exact_resolution_fraction`` is
    the share of those the SAT stage settled to a definite verdict
    (``1.0`` means no pair was left ``glitch-possible`` — a pure
    completeness property of the encoding, so the CI gate requires it
    exactly on every suite circuit regardless of hardware)."""
    from repro.analysis.hazard_exact import ExactHazardChecker

    checker = ExactHazardChecker(circuit)
    checker.check_pairs(detection.multi_cycle_pairs)
    summary = checker.summary()
    return {
        "hazard_disagreement": summary["disagreement"],
        "exact_resolved": summary["resolved"],
        "exact_resolution_fraction": summary["resolution_fraction"],
        "exact_safe": summary["safe"],
        "exact_glitch_proven": summary["glitch_proven"],
        "exact_glitch_possible": summary["glitch_possible"],
        "exact_sat_solves": summary["sat_solves"],
    }


def _topology_metrics(circuit, repeats: int = 5) -> dict[str, float | bool]:
    """Shipping topology pass (cold reach build + extraction) vs set BFS.

    The shipping path is what :func:`connected_ff_pairs` actually
    dispatches to: below the auto-BFS cutoff it *is* the per-sink BFS
    (``topology_auto_bfs`` true, speedup ~1 by construction — the old
    report showed 0.14–0.19 "slowdowns" on s27/fig1 because it forced
    the vectorized pass onto circuits the stage never uses it for);
    above the cutoff it is the cold packed sink-reach build plus pair
    extraction.  Best-of-``repeats`` to keep single-core CI noise out
    of the ratio."""
    csr_arrays(circuit)  # warm the CSR cache (shared with the engines)
    connected_ff_pairs_bfs(circuit)  # warm fanout cache
    connected_ff_pairs(circuit)  # warm the reach cache for extraction
    auto_bfs = prefers_bfs(circuit)

    def once_shipping() -> float:
        # What the topology stage pays once per circuit version.
        started = time.perf_counter()
        if not auto_bfs:
            build_sink_reach(circuit)
        connected_ff_pairs(circuit)
        return time.perf_counter() - started

    def once_bfs() -> float:
        started = time.perf_counter()
        connected_ff_pairs_bfs(circuit)
        return time.perf_counter() - started

    shipping_seconds = min(once_shipping() for _ in range(repeats))
    bfs_seconds = min(once_bfs() for _ in range(repeats))
    return {
        "topology_seconds": round(shipping_seconds, 6),
        "topology_seconds_bfs": round(bfs_seconds, 6),
        "topology_auto_bfs": auto_bfs,
        "topology_speedup": round(
            bfs_seconds / shipping_seconds if shipping_seconds else 0.0, 3
        ),
    }


def _stage_seconds(tracer: Tracer) -> dict[str, float]:
    return {
        record["stage"]: record["seconds"]
        for record in tracer.select("stage_end")
    }


@pytest.mark.parametrize("circuit", _CIRCUITS, ids=_IDS)
def test_pipeline_serial(benchmark, circuit):
    result = benchmark(lambda: _run(circuit, workers=1)[0])
    assert result.connected_pairs >= len(result.multi_cycle_pairs)


@pytest.mark.parametrize("circuit", _CIRCUITS, ids=_IDS)
def test_pipeline_parallel(benchmark, circuit):
    result = benchmark.pedantic(
        lambda: _run(circuit, workers=_WORKERS)[0], rounds=1, iterations=1
    )
    assert result.connected_pairs >= len(result.multi_cycle_pairs)


@pytest.mark.parametrize("circuit", _CIRCUITS, ids=_IDS)
def test_sim_engine_speedup(circuit):
    """The shipping stage-1 engine must beat the pre-optimisation one."""
    _sustained_compiled(circuit)  # warmup
    _sustained_python_fresh(circuit)
    assert _sustained_python_fresh(circuit) > _sustained_compiled(circuit)


def test_pipeline_report(bench_circuits):
    """Executor + stage-1 throughput per circuit, written to JSON."""
    entries = []
    lines = [
        "Pipeline executor and stage-1 simulation throughput",
        f"{'circuit':>10}  {'pairs':>6}  {'serial(s)':>10}  "
        f"{'workers=' + str(_WORKERS) + '(s)':>14}  {'speedup':>8}  "
        f"{'Mpat/s':>8}  {'simx':>6}  {'dec p/s':>8}  {'decx':>6}  "
        f"{'pdecx':>6}  {'hazx':>6}  {'exres':>9}  {'impl db/base':>12}  "
        f"{'db build':>9}",
    ]
    for circuit in bench_circuits:
        _run(circuit, workers=1)  # warmup (plan + expansion caches)
        serial_tracer = Tracer()
        serial, serial_seconds = _run(circuit, workers=1, tracer=serial_tracer)
        parallel_tracer = Tracer()
        parallel, parallel_seconds = _run(
            circuit, workers=_WORKERS, tracer=parallel_tracer
        )
        assert serial.pair_records() == parallel.pair_records(), (
            f"parallel run changed a verdict on {circuit.name}"
        )
        # True when the workers>1 run never actually sharded: either the
        # threshold fallback engaged or no pairs reached the decision stage.
        execs = parallel_tracer.select("decision_exec")
        auto_serial = not any(e["mode"] == "parallel" for e in execs)
        speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0

        _sustained_compiled(circuit)  # warmup
        _sustained_python_fresh(circuit)
        compiled_seconds = _sustained_compiled(circuit)
        python_seconds = _sustained_python_fresh(circuit)
        patterns = _SIM_ROUNDS * 64 * _SIM_WORDS
        pps = patterns / compiled_seconds if compiled_seconds else 0.0
        pps_python = patterns / python_seconds if python_seconds else 0.0
        sim_speedup = pps / pps_python if pps_python else 0.0

        survivors, shared_seconds, fresh_seconds = _sustained_decision(circuit)
        if survivors:
            dps = survivors / shared_seconds if shared_seconds else 0.0
            decision_speedup = (
                fresh_seconds / shared_seconds if shared_seconds else 0.0
            )
        else:
            # Nothing survived the random filter: both timings are pure
            # per-call noise (the old report recorded 0.83 "slowdowns"
            # on s27 from exactly this), so record a neutral ratio.
            dps, decision_speedup = 0.0, 1.0

        packed_decide = _sustained_packed_decision(circuit)
        hazard = _sustained_hazard(circuit, serial)
        exact_hazard = _exact_hazard_metrics(circuit, serial)
        topology = _topology_metrics(circuit)
        implication = _implication_metrics(circuit, serial)

        entries.append(
            {
                "circuit": circuit.name,
                "connected_pairs": serial.connected_pairs,
                "multi_cycle_pairs": len(serial.multi_cycle_pairs),
                "serial_seconds": round(serial_seconds, 6),
                "parallel_seconds": round(parallel_seconds, 6),
                "speedup": round(speedup, 3),
                "auto_serial": auto_serial,
                "stage_seconds": _stage_seconds(serial_tracer),
                "patterns_per_sec": round(pps),
                "patterns_per_sec_python_fresh": round(pps_python),
                "sim_speedup": round(sim_speedup, 3),
                "decision_pairs": survivors,
                "decision_pairs_per_sec": round(dps),
                "decision_speedup": round(decision_speedup, 3),
                **packed_decide,
                **hazard,
                **exact_hazard,
                **topology,
                **implication,
            }
        )
        lines.append(
            f"{circuit.name:>10}  {serial.connected_pairs:>6}  "
            f"{serial_seconds:>10.3f}  {parallel_seconds:>14.3f}  "
            f"{speedup:>8.2f}  {pps / 1e6:>8.2f}  {sim_speedup:>6.1f}  "
            f"{dps:>8.0f}  {decision_speedup:>6.2f}  "
            f"{packed_decide['decide_speedup']:>6.1f}  "
            f"{hazard['hazard_speedup']:>6.1f}  "
            f"{exact_hazard['exact_resolved']:>3}/"
            f"{exact_hazard['hazard_disagreement']:<3}"
            f"{exact_hazard['exact_resolution_fraction']:>5.2f}  "
            f"{implication['implication_proved_db']:>5}/"
            f"{implication['implication_proved']:<5} "
            f"{implication['db_build_seconds'] * 1e3:>7.1f}ms"
        )
        # Acceptance: a workers>1 run must either win or have declined to
        # shard (auto-serial) — never pay dispatch overhead for a loss.
        assert speedup >= 0.8 or auto_serial, (
            f"parallel executor lost without auto-serial on {circuit.name}"
        )
        # Acceptance: the exact SAT stage must settle every pair the
        # sensitization bounds disagreed on — a glitch-possible leftover
        # means lost completeness, not a hard circuit.
        assert exact_hazard["exact_resolution_fraction"] == 1.0, (
            f"exact hazard stage left "
            f"{exact_hazard['exact_glitch_possible']} of "
            f"{exact_hazard['hazard_disagreement']} disagreements "
            f"unresolved on {circuit.name}"
        )
    # Acceptance: on the largest circuit with surviving pairs the packed
    # implication closure must beat the scalar per-case kernel at least 4x.
    with_cases = [e for e in entries if e["decide_cases"]]
    if with_cases:
        assert with_cases[-1]["decide_speedup"] >= 4.0, (
            f"decide_speedup {with_cases[-1]['decide_speedup']} < 4 on "
            f"{with_cases[-1]['circuit']}"
        )
    # Acceptance: on the largest circuit with detected MC pairs the packed
    # verdict sweep must beat the scalar evaluation at least 3x.
    with_pairs = [e for e in entries if e["hazard_lanes"]]
    if with_pairs:
        assert with_pairs[-1]["hazard_speedup"] >= 3.0, (
            f"hazard_speedup {with_pairs[-1]['hazard_speedup']} < 3 on "
            f"{with_pairs[-1]['circuit']}"
        )
    # Fixed-size topology probe (see module docstring): the bitset pass
    # must hold a >= 2x win at scale.
    probe_circuit = generate(spec_by_name(_TOPOLOGY_PROBE))
    probe = {
        "circuit": _TOPOLOGY_PROBE,
        "num_nodes": probe_circuit.num_nodes,
        "num_dffs": len(probe_circuit.dffs),
        **_topology_metrics(probe_circuit),
    }
    assert probe["topology_speedup"] >= 2.0, (
        f"topology_speedup {probe['topology_speedup']} < 2 on the "
        f"{_TOPOLOGY_PROBE} probe"
    )
    lines.append(
        f"topology probe {_TOPOLOGY_PROBE}: bitset "
        f"{probe['topology_seconds'] * 1e3:.2f}ms vs bfs "
        f"{probe['topology_seconds_bfs'] * 1e3:.2f}ms "
        f"({probe['topology_speedup']:.1f}x)"
    )
    report = {
        "profile": PROFILE,
        "workers": _WORKERS,
        "cpu_count": os.cpu_count(),
        "sim_rounds": _SIM_ROUNDS,
        "sim_words": _SIM_WORDS,
        "round_batch": _ROUND_BATCH,
        "results": entries,
        "topology_probe": probe,
    }
    # Carry the scale section (peak-RSS/wall-time curves, regenerated
    # separately via REPRO_BENCH_SCALE because its 10k–100k-gate runs
    # take minutes) and the cache section (written by test_cache_report,
    # which may run after this test) over from the existing report.
    try:
        previous = json.loads(_RESULT_PATH.read_text())
    except (OSError, ValueError):
        previous = {}
    for section in ("scale", "cache", "backplane"):
        if section in previous:
            report[section] = previous[section]
    _RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    lines.append(f"  written to {_RESULT_PATH.name}")
    record_report("\n".join(lines))


#: fixed circuit for the artifact-store cold/warm and ECO probes.
_CACHE_PROBE = "syn6000"


def test_cache_report(tmp_path):
    """Artifact-store cold/warm wall time and the ECO re-decide fraction.

    Two full ``implication_db=True`` detections of the same generated
    circuit share one store directory: the warm run must *load* every
    expensive artifact (SimPlan, reach matrix, implication DB — hit
    counters prove it, a build would be a miss) and beat the cold run's
    wall time (``warm_speedup``, a back-to-back same-machine ratio, so
    the regression gate applies it on any hardware).

    The ECO probe flips one gate type and re-analyses incrementally
    against the cold run's pair-record bundle; the fraction of decide
    survivors actually re-decided (``eco_re_decide_fraction``) is the
    incremental path's effectiveness and is gated as a ceiling."""
    from repro.circuit.gates import GateType
    from repro.circuit.netlist import Circuit, clear_derived_caches
    from repro.core.incremental import incremental_detect, result_bundle
    from repro.store.runtime import deactivate_store

    store_dir = str(tmp_path / "store")

    def fresh_circuit():
        clear_derived_caches()
        deactivate_store()
        return generate(spec_by_name(_CACHE_PROBE))

    def timed_run(options):
        circuit = fresh_circuit()
        started = time.perf_counter()
        result = MultiCycleDetector(circuit, options).run()
        return circuit, result, time.perf_counter() - started

    db_options = DetectorOptions(implication_db=True, cache_dir=store_dir)
    _, cold_result, cold_seconds = timed_run(db_options)
    _, warm_result, warm_seconds = timed_run(db_options)
    assert cold_result.pair_records() == warm_result.pair_records()
    # The warm run must have loaded every expensive artifact instead of
    # rebuilding: hits prove the skips, zero misses proves no rebuild.
    assert warm_result.cache["misses"] == 0, warm_result.cache
    assert warm_result.cache["hits"] >= 3, warm_result.cache
    warm_speedup = cold_seconds / warm_seconds if warm_seconds else 0.0
    assert warm_speedup > 1.0, (
        f"warm run not faster: {warm_seconds:.2f}s vs {cold_seconds:.2f}s"
    )

    # ECO probe on plain options (the implication DB is globally
    # sensitive and would soundly re-decide everything).
    plain = DetectorOptions()
    base = fresh_circuit()
    bundle = result_bundle(MultiCycleDetector(base, plain).run(), plain)
    edited = Circuit(base.name)
    flips = {
        GateType.AND: GateType.OR, GateType.OR: GateType.AND,
        GateType.NAND: GateType.NOR, GateType.NOR: GateType.NAND,
        GateType.XOR: GateType.XNOR, GateType.XNOR: GateType.XOR,
    }
    # The victim must sit inside at least one capture cone — flip a
    # gate driving a DFF data input, not one feeding only outputs.
    victim = next(
        base.fanins[ff][0] for ff in base.dffs
        if base.fanins[ff] and base.types[base.fanins[ff][0]] in flips
    )
    for node_id in range(base.num_nodes):
        gate_type = base.types[node_id]
        if node_id == victim:
            gate_type = flips[gate_type]
        edited.add_node(gate_type, (), base.names[node_id])
    for node_id in range(base.num_nodes):
        edited.set_fanins(node_id, tuple(base.fanins[node_id]))
    started = time.perf_counter()
    eco_result = incremental_detect(edited, plain, bundle)
    eco_seconds = time.perf_counter() - started
    stats = eco_result.incremental
    fraction = (
        stats["re_decided"] / stats["survivors"] if stats["survivors"]
        else 0.0
    )
    assert fraction < 1.0, (
        f"single-gate ECO re-decided every survivor: {stats}"
    )
    deactivate_store()

    cache_section = {
        "circuit": _CACHE_PROBE,
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "warm_speedup": round(warm_speedup, 3),
        "warm_hits": warm_result.cache["hits"],
        "warm_misses": warm_result.cache["misses"],
        "eco_survivors": stats["survivors"],
        "eco_inherited": stats["inherited"],
        "eco_re_decided": stats["re_decided"],
        "eco_re_decide_fraction": round(fraction, 4),
        "eco_seconds": round(eco_seconds, 6),
    }
    try:
        report = json.loads(_RESULT_PATH.read_text())
    except (OSError, ValueError):
        report = {}
    report["cache"] = cache_section
    _RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    record_report(
        f"Artifact store ({_CACHE_PROBE}): cold {cold_seconds:.2f}s, warm "
        f"{warm_seconds:.2f}s ({warm_speedup:.2f}x, "
        f"{warm_result.cache['hits']} hits); ECO re-decided "
        f"{stats['re_decided']}/{stats['survivors']} survivors "
        f"({fraction:.1%}) in {eco_seconds:.2f}s"
    )


def test_backplane_report():
    """Shared-memory backplane probe: spawn cost, worker RSS, identity.

    Three detections of one generated circuit: serial reference, then
    ``workers=N`` with the backplane published (``on``) and suppressed
    (``off``).  All three must produce byte-identical ``pair_records``.
    The ``on`` run's summary must show every worker attached without a
    single artifact-store miss — attach *replaces* rebuild — and its
    ``spawn_seconds_max`` / per-worker ``ru_maxrss`` land in the
    ``backplane`` section of ``BENCH_pipeline.json``, where the CI gate
    tracks them (spawn with generous headroom, RSS with the standard
    tolerance)."""
    circuit = generate(spec_by_name(_CACHE_PROBE))
    serial, _ = _run(circuit, workers=1)  # also warms the derived caches
    on_result, on_seconds = _run(
        circuit, workers=_WORKERS,
        options=DetectorOptions(workers=_WORKERS, backplane="on"),
    )
    off_result, off_seconds = _run(
        circuit, workers=_WORKERS,
        options=DetectorOptions(workers=_WORKERS, backplane="off"),
    )
    records = serial.pair_records()
    assert records == on_result.pair_records(), (
        "backplane=on changed a pair record"
    )
    assert records == off_result.pair_records(), (
        "backplane=off changed a pair record"
    )
    summary = on_result.backplane
    assert summary is not None, "workers>1 backplane=on published nothing"
    assert off_result.backplane is None, "backplane=off still published"
    assert summary["attached"] == summary["workers"], summary
    # Attach replaces rebuild: a worker that reaches for the on-disk
    # store during prepare would count a miss here.
    assert summary["worker_store_misses"] == 0, summary

    section = {
        "circuit": _CACHE_PROBE,
        "workers": summary["workers"],
        "kinds": summary["kinds"],
        "bytes": summary["bytes"],
        "attached": summary["attached"],
        "worker_spawn_seconds": summary["spawn_seconds_max"],
        "worker_rss_max_kb": summary["worker_rss_max_kb"],
        "worker_store_misses": summary["worker_store_misses"],
        "parallel_seconds_on": round(on_seconds, 6),
        "parallel_seconds_off": round(off_seconds, 6),
    }
    try:
        report = json.loads(_RESULT_PATH.read_text())
    except (OSError, ValueError):
        report = {}
    report["backplane"] = section
    _RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    record_report(
        f"Backplane ({_CACHE_PROBE}, workers={summary['workers']}): "
        f"{len(summary['kinds'])} artifacts / {summary['bytes']} bytes "
        f"shared, {summary['attached']} attached, spawn "
        f"{summary['spawn_seconds_max'] * 1e3:.1f}ms, worker RSS "
        f"{summary['worker_rss_max_kb'] / 1024:.0f} MB, "
        f"{summary['worker_store_misses']} store misses; wall "
        f"on {on_seconds:.2f}s / off {off_seconds:.2f}s"
    )


def _scale_circuits() -> list[str]:
    """Scale-ladder circuits selected by ``REPRO_BENCH_SCALE``.

    ``1``/``true``/``all`` runs the whole 10k–100k ladder; a comma list
    (``syn12000,syn20000``) runs those rungs only; unset/0 skips."""
    value = os.environ.get("REPRO_BENCH_SCALE", "").strip().lower()
    if value in ("", "0", "false"):
        return []
    from repro.bench_gen.suite import scale_specs

    if value in ("1", "true", "all"):
        return [spec.name for spec in scale_specs()]
    return [name.strip() for name in value.split(",") if name.strip()]


@pytest.mark.skipif(not _scale_circuits(), reason="REPRO_BENCH_SCALE not set")
def test_scale_report():
    """Peak-RSS / wall-time curves over the streaming-scale ladder.

    Each rung runs in a fresh interpreter (``scale_runner.py``) under a
    hard address-space ceiling, so ``peak_rss_bytes`` is the honest
    process-wide bound and a memory blow-up fails the run instead of
    swapping.  The smallest rung is additionally run at ``workers=2``
    to record the work-stealing decision-queue timings.  Results merge
    into the ``scale`` section of ``BENCH_pipeline.json``."""
    import subprocess
    import sys

    names = _scale_circuits()
    runner = Path(__file__).parent / "scale_runner.py"
    env = dict(os.environ)
    src = str(Path(__file__).parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

    def run_one(name: str, *extra: str) -> dict:
        command = [sys.executable, str(runner), name,
                   "--streaming", "on", "--rss-limit-mb", "4096", *extra]
        proc = subprocess.run(
            command, capture_output=True, text=True, env=env
        )
        assert proc.returncode == 0, (
            f"{name} failed under the RSS ceiling:\n{proc.stderr}"
        )
        return json.loads(proc.stdout)

    entries = [run_one(name) for name in names]
    queue_probe = run_one(names[0], "--workers", "2")

    lines = ["Streaming scale ladder (fresh process per rung, "
             "4096 MB hard ceiling)",
             f"{'circuit':>10}  {'gates':>7}  {'dffs':>6}  {'pairs':>8}  "
             f"{'groups':>7}  {'wall(s)':>8}  {'peakRSS(MB)':>12}"]
    for entry in entries:
        lines.append(
            f"{entry['circuit']:>10}  {entry['num_gates']:>7}  "
            f"{entry['num_dffs']:>6}  {entry['connected_pairs']:>8}  "
            f"{entry['groups']:>7}  {entry['wall_seconds']:>8.1f}  "
            f"{entry['peak_rss_bytes'] / (1024 * 1024):>12.1f}"
        )
    if "decision_queue" in queue_probe:
        queue = queue_probe["decision_queue"]
        lines.append(
            f"queue probe {queue_probe['circuit']} workers="
            f"{queue['workers']}: {queue['units']} units of "
            f"~{queue['unit_pairs']} pairs (split at {queue['split']})"
        )

    try:
        report = json.loads(_RESULT_PATH.read_text())
    except (OSError, ValueError):
        report = {}
    report["scale"] = {
        "rss_limit_mb": 4096,
        "results": entries,
        "queue_probe": queue_probe,
    }
    _RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    lines.append(f"  written to {_RESULT_PATH.name}")
    record_report("\n".join(lines))
