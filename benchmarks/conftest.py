"""Shared fixtures for the benchmark harness.

Each ``bench_*``/``test_*`` module regenerates one of the paper's tables
or figures (see DESIGN.md's experiment index).  The circuit profile is
selected with the ``REPRO_BENCH_PROFILE`` environment variable:

* ``tiny`` (default)  — seconds; CI-friendly smoke of every experiment,
* ``small``           — the default reported in EXPERIMENTS.md,
* ``medium``/``large``/``full`` — the scaling runs.

Formatted tables are printed at the end of the run (use ``-s`` to see
them immediately); they are also appended to ``benchmarks/_reports.txt``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench_gen.suite import suite

PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "tiny")
_REPORT_PATH = Path(__file__).parent / "_reports.txt"
_reports: list[str] = []


def record_report(text: str) -> None:
    """Print a table and remember it for the end-of-run dump."""
    _reports.append(text)
    print("\n" + text)


@pytest.fixture(scope="session")
def bench_profile() -> str:
    return PROFILE


@pytest.fixture(scope="session")
def bench_circuits():
    """The benchmark suite at the selected profile."""
    return suite(PROFILE)


def pytest_sessionfinish(session, exitstatus):
    if _reports:
        _REPORT_PATH.write_text(
            f"profile: {PROFILE}\n\n" + "\n\n".join(_reports) + "\n"
        )
