"""Experiment T1 — the paper's Table 1.

Per circuit: inputs, FFs, connected FF pairs, detected multi-cycle pairs
and CPU time for the implication-based method versus the conventional
SAT-based method [9].  The reproduction claims (see EXPERIMENTS.md):

* both methods find the *same* multi-cycle pairs on every circuit,
* the implication-based method is faster, with the gap growing with size,
* multi-cycle pairs are a substantial minority of all connected pairs.

``pytest benchmarks/bench_table1.py --benchmark-only`` times the two
methods per circuit; the formatted table is printed at session end.
"""

from __future__ import annotations

import pytest

from repro.core.detector import detect_multi_cycle_pairs
from repro.sat.mc_sat import sat_detect_multi_cycle_pairs
from repro.reporting.tables import run_table1

from conftest import PROFILE, record_report
from repro.bench_gen.suite import suite

_CIRCUITS = suite(PROFILE)
_IDS = [c.name for c in _CIRCUITS]

#: The per-pair SAT baseline is quadratic-ish in circuit size; keep the
#: timed comparison to circuits where it finishes in sensible time.
_SAT_BENCH_MAX_GATES = 1000


@pytest.mark.parametrize("circuit", _CIRCUITS, ids=_IDS)
def test_table1_ours(benchmark, circuit):
    result = benchmark(detect_multi_cycle_pairs, circuit)
    assert result.connected_pairs >= len(result.multi_cycle_pairs)


@pytest.mark.parametrize(
    "circuit",
    [c for c in _CIRCUITS if c.num_gates <= _SAT_BENCH_MAX_GATES],
    ids=[c.name for c in _CIRCUITS if c.num_gates <= _SAT_BENCH_MAX_GATES],
)
def test_table1_sat_baseline(benchmark, circuit):
    result = benchmark(sat_detect_multi_cycle_pairs, circuit, mode="per-pair")
    reference = detect_multi_cycle_pairs(circuit)
    assert result.multi_cycle_pair_names() == reference.multi_cycle_pair_names()


def test_table1_report(benchmark, bench_circuits):
    """Regenerate and print the full Table 1 (agreement asserted per row)."""
    timed = [c for c in bench_circuits if c.num_gates <= _SAT_BENCH_MAX_GATES]
    table, detections = benchmark.pedantic(
        run_table1, args=(timed,), kwargs={"sat_mode": "per-pair"},
        rounds=1, iterations=1,
    )
    for row, detection in zip(table.rows, detections):
        assert row[4] == row[6], f"SAT baseline disagrees on {row[0]}"
    untimed = [c for c in bench_circuits if c.num_gates > _SAT_BENCH_MAX_GATES]
    if untimed:
        extra, _ = run_table1(untimed, run_sat=False)
        table.rows[-1:-1] = extra.rows[:-1]
        table.notes.append(
            "SAT column omitted for circuits above "
            f"{_SAT_BENCH_MAX_GATES} gates."
        )
    record_report(table.format())
