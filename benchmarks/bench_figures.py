"""Experiments F1-F4 — the paper's illustrative figures as benchmarks.

* F1/F2: the Fig. 1 example end to end and the Fig. 2 implication run
  (values asserted to match the paper's narrative),
* F3: the Fig. 3 mapped circuit's hazard detection,
* F4: the Fig. 4 sensitization/co-sensitization gap.
"""

from __future__ import annotations

from repro.circuit.library import fig1_circuit, fig3_circuit, fig4_fragment
from repro.circuit.timeframe import expand
from repro.core.detector import detect_multi_cycle_pairs
from repro.core.hazard import check_hazards
from repro.core.sensitization import (
    PathSearchOutcome,
    SensitizationMode,
    find_sensitizable_path,
)
from repro.atpg.implication import ImplicationEngine
from repro.logic.values import ONE, ZERO

from conftest import record_report


def test_fig1_detection(benchmark):
    """F1: 9 connected pairs, 5 multi-cycle — the Section 4.2 numbers."""
    circuit = fig1_circuit()
    result = benchmark(detect_multi_cycle_pairs, circuit)
    assert result.connected_pairs == 9
    assert len(result.multi_cycle_pairs) == 5


def test_fig2_implication_run(benchmark):
    """F2: one implication run on the 2-frame expansion of Fig. 1."""
    circuit = fig1_circuit()
    expansion = expand(circuit, 2)
    engine = ImplicationEngine(expansion.comb)
    i = expansion.ff_index(circuit.id_of("FF1"))
    j = expansion.ff_index(circuit.id_of("FF2"))
    premise = [
        (expansion.ff_at[0][i], ZERO),
        (expansion.ff_at[1][i], ONE),
        (expansion.ff_at[1][j], ZERO),
    ]

    def run_implication():
        mark = engine.checkpoint()
        ok = engine.assume_all(premise)
        value = engine.value(expansion.ff_at[2][j])
        engine.backtrack(mark)
        return ok, value

    ok, value = benchmark(run_implication)
    assert ok and value == ZERO


def test_fig3_hazard_detection(benchmark):
    """F3: static sensitization flags (FF3, FF2) on the mapped circuit."""
    circuit = fig3_circuit()
    detection = detect_multi_cycle_pairs(circuit)
    result = benchmark(
        check_hazards, circuit, detection,
        SensitizationMode.STATIC_SENSITIZATION,
    )
    flagged = {
        (circuit.names[p.pair.source], circuit.names[p.pair.sink])
        for p in result.flagged_pairs
    }
    assert ("FF3", "FF2") in flagged


def test_fig4_sensitization_gap(benchmark):
    """F4: A->C co-sensitizable but not sensitizable when B = 0."""
    circuit = fig4_fragment()
    expansion = expand(circuit, 2)
    comb = expansion.comb
    a_node = expansion.ff_at[1][expansion.ff_index(circuit.id_of("A"))]
    b_node = expansion.ff_at[1][expansion.ff_index(circuit.id_of("B"))]
    c_node = comb.id_of("C@1")

    def both_checks():
        engine = ImplicationEngine(comb)
        assert engine.assume(b_node, ZERO)
        sens = find_sensitizable_path(
            engine, a_node, c_node, {c_node},
            SensitizationMode.STATIC_SENSITIZATION,
        )
        cosens = find_sensitizable_path(
            engine, a_node, c_node, {c_node},
            SensitizationMode.STATIC_CO_SENSITIZATION,
        )
        return sens.outcome, cosens.outcome

    sens, cosens = benchmark(both_checks)
    assert sens is PathSearchOutcome.NONE
    assert cosens is PathSearchOutcome.FOUND


def test_figures_report(benchmark):
    circuit = fig1_circuit()
    result = benchmark.pedantic(detect_multi_cycle_pairs, args=(circuit,),
                                rounds=1, iterations=1)
    lines = [
        "Figures F1-F4 (paper examples):",
        f"  F1 fig1: {result.connected_pairs} connected pairs, "
        f"{len(result.multi_cycle_pairs)} multi-cycle "
        "(paper: 9 and 5)",
        "  F2 implication derives FF2(t+2)=FF2(t+1) for the rise at FF1",
        "  F3 (FF3, FF2) hazard found on the mapped circuit",
        "  F4 A->C co-sensitizable but not statically sensitizable",
    ]
    record_report("\n".join(lines))
