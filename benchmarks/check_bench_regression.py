"""CI gate: fail when stage-1 simulation throughput regresses.

Compares a freshly generated ``BENCH_pipeline.json`` against the
committed baseline and exits non-zero when any circuit's throughput
dropped by more than ``--tolerance`` (default 30%).

Raw throughput is only comparable on like-for-like hardware, so the
metrics are chosen per the recorded ``cpu_count``:

* same ``cpu_count`` in baseline and current → compare
  ``patterns_per_sec`` (stage-1 simulation),
  ``decision_pairs_per_sec`` (decision stage) and
  ``hazard_pairs_per_sec`` (hazard stage) directly;
* different hardware → compare ``sim_speedup``, ``decision_speedup``
  and ``hazard_speedup`` — ratios of the shipping engines over their
  pre-optimisation counterparts, measured back-to-back on the same
  machine, hence hardware-independent.

``decide_speedup`` — the packed bit-parallel implication closure over
the scalar per-case kernel, measured back to back on the same cases —
is itself such a ratio, so it is gated in both cases.

``implication_proved_db`` — pairs the implication stage settles when fed
the compiled global implication database — is a count, not a rate, so it
is gated in both cases: the DB must keep proving at least as many pairs
as the recorded baseline.

The fixed-size ``topology_probe`` (bitset reachability vs set BFS, both
measured back to back) is gated in both cases via its speedup ratio.

``exact_resolution_fraction`` — the share of sensitization-bound
disagreements the exact SAT hazard stage settled — is a completeness
property with no timing in it, so it is gated absolutely: any suite
circuit reporting less than 1.0 fails regardless of hardware or
baseline.

The ``scale`` section (streaming-scale ladder, fresh process per rung)
gates ``peak_rss_bytes`` the other way around: peak memory is dominated
by data-structure sizes, not clock speed, so regardless of hardware the
current peak must not *grow* past the baseline by more than the
tolerance.  The gate is skipped when the current report has no scale
section (the tier is regenerated separately via ``REPRO_BENCH_SCALE``).

The ``cache`` section (artifact-store cold/warm probe) gates
``warm_speedup`` as a floor — a back-to-back same-machine ratio, so it
applies on any hardware — and ``eco_re_decide_fraction`` as a ceiling:
the incremental ECO path must not re-decide a larger share of the
decide survivors than the baseline allows.  Both gates are skipped when
the current report carries no cache section.

The ``backplane`` section (shared-memory worker-pool probe) gates
per-worker peak RSS as a growth ceiling (a worker falling back to
private rebuilds is an N-times aggregate-memory regression), worker
artifact-store misses as an exact count, and worker spawn seconds with
generous headroom; all three apply regardless of hardware and are
skipped when the current report carries no backplane section.

Usage::

    python check_bench_regression.py BASELINE.json CURRENT.json [--tolerance 0.30]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _by_circuit(report: dict) -> dict[str, dict]:
    return {entry["circuit"]: entry for entry in report.get("results", [])}


def _metrics(baseline: dict, current: dict) -> tuple[str, ...]:
    same_hardware = baseline.get("cpu_count") == current.get("cpu_count")
    if same_hardware:
        return (
            "patterns_per_sec",
            "decision_pairs_per_sec",
            "decide_speedup",
            "hazard_pairs_per_sec",
            "implication_proved_db",
        )
    # implication_proved_db (a pair count) and decide_speedup (a
    # back-to-back kernel ratio) are hardware-independent — both are
    # gated either way.
    return (
        "sim_speedup",
        "decision_speedup",
        "decide_speedup",
        "hazard_speedup",
        "implication_proved_db",
    )


def check(baseline: dict, current: dict, tolerance: float) -> list[str]:
    """Return one failure message per regressed metric (empty = pass)."""
    metrics = _metrics(baseline, current)
    failures = []
    current_entries = _by_circuit(current)
    for name, base in _by_circuit(baseline).items():
        entry = current_entries.get(name)
        if entry is None:
            failures.append(f"{name}: missing from current report")
            continue
        for metric in metrics:
            reference = base.get(metric)
            measured = entry.get(metric)
            if not reference or measured is None:
                continue  # old-format report without the metric: no gate
            floor = reference * (1.0 - tolerance)
            if measured < floor:
                failures.append(
                    f"{name}: {metric} {measured:,.0f} < floor {floor:,.0f} "
                    f"(baseline {reference:,.0f}, tolerance {tolerance:.0%})"
                )
    base_probe = baseline.get("topology_probe") or {}
    current_probe = current.get("topology_probe") or {}
    reference = base_probe.get("topology_speedup")
    measured = current_probe.get("topology_speedup")
    if reference and measured is not None:
        floor = reference * (1.0 - tolerance)
        if measured < floor:
            failures.append(
                f"topology_probe ({base_probe.get('circuit')}): "
                f"topology_speedup {measured:.2f} < floor {floor:.2f} "
                f"(baseline {reference:.2f}, tolerance {tolerance:.0%})"
            )
    failures.extend(_check_exact_hazard(current))
    failures.extend(_check_scale(baseline, current, tolerance))
    failures.extend(_check_cache(baseline, current, tolerance))
    failures.extend(_check_backplane(baseline, current, tolerance))
    return failures


def _check_exact_hazard(current: dict) -> list[str]:
    """Exact-hazard completeness gate (hardware-independent, no tolerance).

    ``exact_resolution_fraction`` is the share of bound disagreements
    the SAT stage settled to a definite verdict.  It carries no timing
    component — anything below 1.0 means the encoding or its budgets
    lost completeness on a suite circuit, so the gate is absolute and
    ignores the baseline entirely.  Reports that predate the metric
    are not gated."""
    failures = []
    for entry in current.get("results", []):
        fraction = entry.get("exact_resolution_fraction")
        if fraction is None:
            continue
        if fraction != 1.0:
            failures.append(
                f"{entry['circuit']}: exact_resolution_fraction "
                f"{fraction:.4f} != 1.0 "
                f"({entry.get('hazard_disagreement', '?')} disagreements, "
                f"{entry.get('exact_resolved', '?')} resolved — the exact "
                f"hazard stage must settle every pair the bounds disagree on)"
            )
    return failures


def _check_scale(baseline: dict, current: dict, tolerance: float) -> list[str]:
    """Peak-RSS growth gate over the streaming-scale ladder (see docstring)."""
    current_entries = {
        entry["circuit"]: entry
        for entry in (current.get("scale") or {}).get("results", [])
    }
    if not current_entries:
        return []  # scale tier not regenerated in this run: no gate
    failures = []
    for base in (baseline.get("scale") or {}).get("results", []):
        entry = current_entries.get(base["circuit"])
        if entry is None:
            continue  # partial regeneration (REPRO_BENCH_SCALE=<names>)
        reference = base.get("peak_rss_bytes")
        measured = entry.get("peak_rss_bytes")
        if not reference or measured is None:
            continue
        ceiling = reference * (1.0 + tolerance)
        if measured > ceiling:
            failures.append(
                f"{base['circuit']}: peak_rss_bytes {measured:,} > ceiling "
                f"{ceiling:,.0f} (baseline {reference:,}, tolerance "
                f"{tolerance:.0%})"
            )
    return failures


def _check_cache(baseline: dict, current: dict, tolerance: float) -> list[str]:
    """Artifact-store gates: warm speedup floor, ECO re-decide ceiling.

    ``warm_speedup`` is a back-to-back cold/warm ratio on one machine,
    so it is gated regardless of hardware.  ``eco_re_decide_fraction``
    is a pure pair count ratio and is gated the other way around: the
    incremental path must not start re-deciding a larger share of the
    survivors than the baseline allows."""
    base = baseline.get("cache") or {}
    entry = current.get("cache") or {}
    if not entry:
        return []  # cache tier not regenerated in this run: no gate
    failures = []
    reference = base.get("warm_speedup")
    measured = entry.get("warm_speedup")
    if reference and measured is not None:
        floor = reference * (1.0 - tolerance)
        if measured < floor:
            failures.append(
                f"cache ({base.get('circuit')}): warm_speedup "
                f"{measured:.2f} < floor {floor:.2f} "
                f"(baseline {reference:.2f}, tolerance {tolerance:.0%})"
            )
    reference = base.get("eco_re_decide_fraction")
    measured = entry.get("eco_re_decide_fraction")
    if reference and measured is not None:
        ceiling = reference * (1.0 + tolerance)
        if measured > ceiling:
            failures.append(
                f"cache ({base.get('circuit')}): eco_re_decide_fraction "
                f"{measured:.4f} > ceiling {ceiling:.4f} "
                f"(baseline {reference:.4f}, tolerance {tolerance:.0%})"
            )
    return failures


def _check_backplane(
    baseline: dict, current: dict, tolerance: float
) -> list[str]:
    """Shared-memory backplane gates: worker RSS, store misses, spawn.

    ``worker_rss_max_kb`` is dominated by data-structure sizes, so like
    the scale gate it is a growth ceiling regardless of hardware: a
    worker that quietly went back to rebuilding its own private copies
    would blow straight through it.  ``worker_store_misses`` is an exact
    count gated at the baseline (attach must keep replacing rebuild).
    ``worker_spawn_seconds`` is wall time in the milliseconds and
    jittery, so its ceiling gets 3x headroom on top of the tolerance —
    generous, but still catching a return to full per-worker rebuilds,
    which cost orders of magnitude more."""
    base = baseline.get("backplane") or {}
    entry = current.get("backplane") or {}
    if not entry:
        return []  # backplane probe not regenerated in this run: no gate
    failures = []
    reference = base.get("worker_rss_max_kb")
    measured = entry.get("worker_rss_max_kb")
    if reference and measured is not None:
        ceiling = reference * (1.0 + tolerance)
        if measured > ceiling:
            failures.append(
                f"backplane ({base.get('circuit')}): worker_rss_max_kb "
                f"{measured:,} > ceiling {ceiling:,.0f} (baseline "
                f"{reference:,}, tolerance {tolerance:.0%})"
            )
    reference = base.get("worker_store_misses")
    measured = entry.get("worker_store_misses")
    if reference is not None and measured is not None:
        if measured > reference:
            failures.append(
                f"backplane ({base.get('circuit')}): worker_store_misses "
                f"{measured} > baseline {reference} (workers rebuilt "
                f"artifacts the backplane should have shipped)"
            )
    reference = base.get("worker_spawn_seconds")
    measured = entry.get("worker_spawn_seconds")
    if reference and measured is not None:
        ceiling = reference * (1.0 + tolerance) * 3.0
        if measured > ceiling:
            failures.append(
                f"backplane ({base.get('circuit')}): worker_spawn_seconds "
                f"{measured:.3f} > ceiling {ceiling:.3f} (baseline "
                f"{reference:.3f}, 3x headroom over {tolerance:.0%})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed BENCH_pipeline.json")
    parser.add_argument("current", type=Path, help="freshly generated report")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional drop before failing (default: 0.30)",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())
    failures = check(baseline, current, args.tolerance)
    metrics = _metrics(baseline, current)
    print(
        f"comparing {', '.join(metrics)} "
        f"(cpu_count baseline={baseline.get('cpu_count')} "
        f"current={current.get('cpu_count')}, tolerance {args.tolerance:.0%})"
    )
    for failure in failures:
        print(f"REGRESSION {failure}", file=sys.stderr)
    if not failures:
        print("benchmark smoke: no regression")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
