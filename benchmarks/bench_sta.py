"""Experiment X2 — timing relaxation from multi-cycle constraints (§1).

The motivation experiment: applying the detector's verdicts as multicycle
timing constraints lowers the minimum feasible clock period.  Reported per
circuit: baseline vs relaxed period and the unlocked speedup.
"""

from __future__ import annotations

import pytest

from repro.core.detector import detect_multi_cycle_pairs
from repro.sta.constraints import relaxation_report
from repro.sta.timing import ff_pair_delays
from repro.reporting.tables import format_table

from conftest import PROFILE, record_report
from repro.bench_gen.suite import suite

_CIRCUITS = suite(PROFILE)
_IDS = [c.name for c in _CIRCUITS]


@pytest.mark.parametrize("circuit", _CIRCUITS, ids=_IDS)
def test_ff_pair_delay_cost(benchmark, circuit):
    delays = benchmark(ff_pair_delays, circuit)
    assert delays


@pytest.mark.parametrize("circuit", _CIRCUITS, ids=_IDS)
def test_relaxation_cost(benchmark, circuit):
    detection = detect_multi_cycle_pairs(circuit)
    report = benchmark(relaxation_report, circuit, detection)
    assert report.min_period_relaxed <= report.min_period_baseline


def test_sta_report(benchmark, bench_circuits):
    detections = benchmark.pedantic(
        lambda: [detect_multi_cycle_pairs(c) for c in bench_circuits],
        rounds=1, iterations=1,
    )
    rows = []
    for circuit, detection in zip(bench_circuits, detections):
        report = relaxation_report(circuit, detection)
        rows.append([
            circuit.name,
            len(report.pair_timings),
            len(detection.multi_cycle_pairs),
            report.min_period_baseline,
            report.min_period_relaxed,
            f"{report.speedup:.2f}x",
        ])
        assert report.speedup >= 1.0
    record_report(format_table(
        "X2: clock-period relaxation from multi-cycle constraints",
        ["circuit", "paths", "MC-pair", "T_baseline", "T_relaxed", "speedup"],
        rows,
        ["Unit gate delays; multi-cycle pairs receive 2 clock periods."],
    ))
