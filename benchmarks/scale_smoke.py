"""CI scale smoke: one ~20k-gate detection under a hard memory ceiling.

Launches :mod:`scale_runner` on the ``syn20000`` scale-ladder circuit in
a fresh interpreter with ``setrlimit``-enforced address-space ceiling,
with the packed decide-stage pre-pass forced on so its lane planes and
plan lowering are part of the bounded footprint —
if the streaming pipeline's memory bound regresses past the ceiling the
child dies with ``MemoryError`` and the smoke fails loudly.  On success
the child's ``peak_rss_bytes`` is additionally gated against the
committed baseline (the ``scale`` section of ``BENCH_pipeline.json``)
with a growth tolerance, so creeping regressions under the hard ceiling
are caught too.

Peak RSS is stable across same-arch machines (it is dominated by data
structure sizes, not clock speed), which is why — unlike the throughput
gates — the RSS gate applies regardless of ``cpu_count``.

A second child repeats the run with a worker pool (``--workers``,
default 2) attached to the shared-memory backplane; its *aggregate*
peak RSS — parent plus every worker, as reported by the runner — must
fit under the same ceiling, so an N-times fleet blow-up (workers
rebuilding private artifact copies instead of attaching) fails the
smoke even though each individual process would stay under its own
``RLIMIT_AS``.

Usage::

    python scale_smoke.py [--circuit syn20000] [--rss-limit-mb 1024]
        [--baseline ../BENCH_pipeline.json] [--tolerance 0.5]
        [--workers 2]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

_RUNNER = Path(__file__).parent / "scale_runner.py"
_DEFAULT_BASELINE = Path(__file__).parent.parent / "BENCH_pipeline.json"


def baseline_rss(baseline_path: Path, circuit: str) -> int | None:
    """The committed ``peak_rss_bytes`` for ``circuit``, if recorded."""
    try:
        report = json.loads(baseline_path.read_text())
    except (OSError, ValueError):
        return None
    for entry in (report.get("scale") or {}).get("results", []):
        if entry.get("circuit") == circuit:
            return entry.get("peak_rss_bytes")
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--circuit", default="syn20000")
    parser.add_argument("--rss-limit-mb", type=int, default=1024,
                        help="hard address-space ceiling for the child "
                             "(default: 1024)")
    parser.add_argument("--baseline", type=Path, default=_DEFAULT_BASELINE,
                        help="committed BENCH_pipeline.json (scale section)")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed fractional peak-RSS growth over the "
                             "baseline (default: 0.5)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker count for the aggregate-RSS probe "
                             "(0 disables it; default: 2)")
    args = parser.parse_args(argv)

    command = [
        sys.executable, str(_RUNNER), args.circuit,
        "--streaming", "on", "--packed-implication", "on",
        "--rss-limit-mb", str(args.rss_limit_mb),
    ]
    print("running:", " ".join(command))
    proc = subprocess.run(command, capture_output=True, text=True)
    if proc.returncode != 0:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        print(
            f"SCALE SMOKE FAILED: {args.circuit} did not complete under "
            f"the {args.rss_limit_mb} MB ceiling",
            file=sys.stderr,
        )
        return 1
    report = json.loads(proc.stdout)
    peak_mb = report["peak_rss_bytes"] / (1024 * 1024)
    print(
        f"{report['circuit']}: {report['num_gates']} gates, "
        f"{report['num_dffs']} FFs, {report['connected_pairs']} pairs, "
        f"{report['wall_seconds']}s, peak RSS {peak_mb:.1f} MB "
        f"(ceiling {args.rss_limit_mb} MB)"
    )

    reference = baseline_rss(args.baseline, args.circuit)
    if reference:
        limit = reference * (1.0 + args.tolerance)
        if report["peak_rss_bytes"] > limit:
            print(
                f"SCALE SMOKE FAILED: peak_rss_bytes "
                f"{report['peak_rss_bytes']:,} > allowed {limit:,.0f} "
                f"(baseline {reference:,}, tolerance {args.tolerance:.0%})",
                file=sys.stderr,
            )
            return 1
        print(
            f"peak RSS within {args.tolerance:.0%} of baseline "
            f"({reference / (1024 * 1024):.1f} MB)"
        )
    else:
        print("no scale baseline recorded; hard-ceiling check only")

    if args.workers > 1:
        # Aggregate-RSS probe: same circuit with a worker pool attached
        # to the shared-memory backplane.  Parent plus every worker must
        # *together* fit under the single-process ceiling — the fleet
        # footprint staying ~1x instead of N-times is exactly what the
        # backplane buys.
        command = [
            sys.executable, str(_RUNNER), args.circuit,
            "--streaming", "on", "--packed-implication", "on",
            "--workers", str(args.workers), "--backplane", "on",
            "--rss-limit-mb", str(args.rss_limit_mb),
        ]
        print("running:", " ".join(command))
        proc = subprocess.run(command, capture_output=True, text=True)
        if proc.returncode != 0:
            print(proc.stdout)
            print(proc.stderr, file=sys.stderr)
            print(
                f"SCALE SMOKE FAILED: {args.circuit} workers="
                f"{args.workers} did not complete under the "
                f"{args.rss_limit_mb} MB ceiling",
                file=sys.stderr,
            )
            return 1
        report = json.loads(proc.stdout)
        aggregate = report.get(
            "aggregate_peak_rss_bytes", report["peak_rss_bytes"]
        )
        aggregate_mb = aggregate / (1024 * 1024)
        spawn = report.get("worker_spawn_seconds")
        misses = (report.get("backplane") or {}).get("worker_store_misses")
        print(
            f"{report['circuit']} workers={args.workers}: aggregate peak "
            f"RSS {aggregate_mb:.1f} MB (parent "
            f"{report['peak_rss_bytes'] / (1024 * 1024):.1f} MB + "
            f"{args.workers} workers), worker spawn "
            f"{spawn if spawn is not None else '?'}s, "
            f"{misses if misses is not None else '?'} worker store misses"
        )
        if aggregate > args.rss_limit_mb * 1024 * 1024:
            print(
                f"SCALE SMOKE FAILED: aggregate_peak_rss_bytes "
                f"{aggregate:,} exceeds the {args.rss_limit_mb} MB "
                f"ceiling — the worker fleet no longer shares the "
                f"backplane pages",
                file=sys.stderr,
            )
            return 1
    print("scale smoke: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
