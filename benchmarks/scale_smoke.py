"""CI scale smoke: one ~20k-gate detection under a hard memory ceiling.

Launches :mod:`scale_runner` on the ``syn20000`` scale-ladder circuit in
a fresh interpreter with ``setrlimit``-enforced address-space ceiling,
with the packed decide-stage pre-pass forced on so its lane planes and
plan lowering are part of the bounded footprint —
if the streaming pipeline's memory bound regresses past the ceiling the
child dies with ``MemoryError`` and the smoke fails loudly.  On success
the child's ``peak_rss_bytes`` is additionally gated against the
committed baseline (the ``scale`` section of ``BENCH_pipeline.json``)
with a growth tolerance, so creeping regressions under the hard ceiling
are caught too.

Peak RSS is stable across same-arch machines (it is dominated by data
structure sizes, not clock speed), which is why — unlike the throughput
gates — the RSS gate applies regardless of ``cpu_count``.

Usage::

    python scale_smoke.py [--circuit syn20000] [--rss-limit-mb 1024]
        [--baseline ../BENCH_pipeline.json] [--tolerance 0.5]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

_RUNNER = Path(__file__).parent / "scale_runner.py"
_DEFAULT_BASELINE = Path(__file__).parent.parent / "BENCH_pipeline.json"


def baseline_rss(baseline_path: Path, circuit: str) -> int | None:
    """The committed ``peak_rss_bytes`` for ``circuit``, if recorded."""
    try:
        report = json.loads(baseline_path.read_text())
    except (OSError, ValueError):
        return None
    for entry in (report.get("scale") or {}).get("results", []):
        if entry.get("circuit") == circuit:
            return entry.get("peak_rss_bytes")
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--circuit", default="syn20000")
    parser.add_argument("--rss-limit-mb", type=int, default=1024,
                        help="hard address-space ceiling for the child "
                             "(default: 1024)")
    parser.add_argument("--baseline", type=Path, default=_DEFAULT_BASELINE,
                        help="committed BENCH_pipeline.json (scale section)")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed fractional peak-RSS growth over the "
                             "baseline (default: 0.5)")
    args = parser.parse_args(argv)

    command = [
        sys.executable, str(_RUNNER), args.circuit,
        "--streaming", "on", "--packed-implication", "on",
        "--rss-limit-mb", str(args.rss_limit_mb),
    ]
    print("running:", " ".join(command))
    proc = subprocess.run(command, capture_output=True, text=True)
    if proc.returncode != 0:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        print(
            f"SCALE SMOKE FAILED: {args.circuit} did not complete under "
            f"the {args.rss_limit_mb} MB ceiling",
            file=sys.stderr,
        )
        return 1
    report = json.loads(proc.stdout)
    peak_mb = report["peak_rss_bytes"] / (1024 * 1024)
    print(
        f"{report['circuit']}: {report['num_gates']} gates, "
        f"{report['num_dffs']} FFs, {report['connected_pairs']} pairs, "
        f"{report['wall_seconds']}s, peak RSS {peak_mb:.1f} MB "
        f"(ceiling {args.rss_limit_mb} MB)"
    )

    reference = baseline_rss(args.baseline, args.circuit)
    if reference:
        limit = reference * (1.0 + args.tolerance)
        if report["peak_rss_bytes"] > limit:
            print(
                f"SCALE SMOKE FAILED: peak_rss_bytes "
                f"{report['peak_rss_bytes']:,} > allowed {limit:,.0f} "
                f"(baseline {reference:,}, tolerance {args.tolerance:.0%})",
                file=sys.stderr,
            )
            return 1
        print(
            f"peak RSS within {args.tolerance:.0%} of baseline "
            f"({reference / (1024 * 1024):.1f} MB)"
        )
    else:
        print("no scale baseline recorded; hard-ceiling check only")
    print("scale smoke: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
