"""Experiment T2 — the paper's Table 2: per-stage resolution statistics.

The paper reports that random simulation drops the vast majority of the
single-cycle pairs while the implication procedure identifies most of the
multi-cycle pairs, leaving only a residue for the ATPG search — that split
is why the method is fast.  This module times each stage in isolation and
regenerates the aggregated table.
"""

from __future__ import annotations

import pytest

from repro.circuit.timeframe import expand
from repro.circuit.topology import connected_ff_pairs
from repro.core.pair_analysis import PairAnalyzer
from repro.core.random_filter import random_filter
from repro.core.detector import detect_multi_cycle_pairs
from repro.reporting.tables import run_table2

from conftest import PROFILE, record_report
from repro.bench_gen.suite import suite

_CIRCUITS = suite(PROFILE)
_IDS = [c.name for c in _CIRCUITS]


@pytest.mark.parametrize("circuit", _CIRCUITS, ids=_IDS)
def test_stage_random_simulation(benchmark, circuit):
    pairs = connected_ff_pairs(circuit)
    report = benchmark(random_filter, circuit, pairs)
    assert len(report.survivors) + report.dropped == len(pairs)


@pytest.mark.parametrize("circuit", _CIRCUITS, ids=_IDS)
def test_stage_implication_and_atpg(benchmark, circuit):
    """Time the per-pair analysis on the simulation survivors only."""
    pairs = random_filter(circuit, connected_ff_pairs(circuit)).survivors
    expansion = expand(circuit, frames=2)

    def analyse_all():
        analyzer = PairAnalyzer(expansion)
        return [analyzer.analyze(pair) for pair in pairs]

    results = benchmark(analyse_all)
    assert len(results) == len(pairs)


def test_table2_report(benchmark, bench_circuits):
    detections = [detect_multi_cycle_pairs(c) for c in bench_circuits]
    table = benchmark.pedantic(
        run_table2, args=(bench_circuits,), kwargs={"detections": detections},
        rounds=1, iterations=1,
    )
    record_report(table.format())
    # The paper's shape: simulation dominates single-cycle identification,
    # implication dominates multi-cycle identification.
    single_row = table.rows[0]
    multi_row = table.rows[1]
    sim_singles = int(single_row[1].split()[0])
    total_singles = sum(int(cell.split()[0]) for cell in single_row[1:])
    impl_multi = int(multi_row[2].split()[0])
    total_multi = sum(int(cell.split()[0]) for cell in multi_row[1:])
    if total_singles:
        assert sim_singles / total_singles > 0.5
    if total_multi:
        assert impl_multi / total_multi > 0.5
