"""One full detection run in its own process, with peak-RSS accounting.

The memory claim of the streaming pipeline — bounded peak RSS on
100k-gate circuits — can only be measured process-wide, so each scale
point runs here, in a fresh interpreter, and reports a single JSON
object on stdout::

    {"circuit": "syn20000", "num_nodes": 19556, "num_gates": ...,
     "num_dffs": 954, "connected_pairs": ..., "multi_cycle": ...,
     "single_cycle": ..., "undecided": ..., "groups": ...,
     "wall_seconds": ..., "peak_rss_bytes": ..., "streaming": "on"}

``peak_rss_bytes`` is the interpreter's lifetime high-water mark
(``getrusage(RUSAGE_SELF).ru_maxrss``, kilobytes on Linux), which is
exactly the bound the streaming pipeline must hold — it includes the
circuit build, the packed matrices and the final per-pair records.

``--rss-limit-mb`` arms a *hard* ceiling before the run via
``setrlimit(RLIMIT_AS, ...)``: exceeding it raises ``MemoryError``
instead of silently swapping, which is what makes the CI smoke a real
acceptance test.  (``RLIMIT_AS`` caps the address space — the only
enforceable proxy on Linux, where ``RLIMIT_RSS`` is a no-op; the
ceiling is therefore set with headroom over the expected RSS.)

Usage::

    python scale_runner.py syn20000 [--streaming on] [--workers 1]
        [--rss-limit-mb 1536] [--trace FILE]
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time


def peak_rss_bytes() -> int:
    """Lifetime peak resident set of this process, in bytes."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def children_peak_rss_bytes() -> int:
    """Largest peak resident set among reaped worker processes, bytes."""
    return resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss * 1024


def arm_rss_ceiling(limit_mb: int) -> None:
    """Make allocations beyond ``limit_mb`` fail instead of swapping."""
    limit = limit_mb * 1024 * 1024
    resource.setrlimit(resource.RLIMIT_AS, (limit, limit))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("circuit", help="suite or scale-ladder spec name")
    parser.add_argument("--streaming", default="on",
                        choices=("auto", "on", "off"))
    parser.add_argument("--packed-implication", default="auto",
                        choices=("auto", "on", "off"),
                        help="packed decide-stage pre-pass mode")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--backplane", default="auto",
                        choices=("auto", "on", "off"),
                        help="shared-memory artifact backplane for the "
                             "worker pool (workers > 1 only)")
    parser.add_argument("--max-pairs-in-flight", type=int, default=8192)
    parser.add_argument("--rss-limit-mb", type=int, default=0,
                        help="hard address-space ceiling (0 = none)")
    parser.add_argument("--cache-dir", default=None,
                        help="content-addressed artifact store directory; "
                             "derived artifacts persist across runner "
                             "invocations (cold vs warm wall time)")
    parser.add_argument("--trace", default=None,
                        help="write the run's JSONL trace to FILE")
    args = parser.parse_args(argv)

    if args.rss_limit_mb:
        arm_rss_ceiling(args.rss_limit_mb)

    # Imports after the ceiling is armed: module loading is part of the
    # process's footprint and must fit under it too.
    from repro.bench_gen.suite import spec_by_name
    from repro.bench_gen.synth import generate
    from repro.core.detector import DetectorOptions, MultiCycleDetector
    from repro.core.result import Stage
    from repro.core.trace import Tracer

    circuit = generate(spec_by_name(args.circuit))
    options = DetectorOptions(
        streaming=args.streaming,
        workers=args.workers,
        backplane=args.backplane,
        max_pairs_in_flight=args.max_pairs_in_flight,
        packed_implication=args.packed_implication,
        cache_dir=args.cache_dir,
    )

    groups = 0
    queue_summary = None

    def run(tracer):
        nonlocal groups, queue_summary
        started = time.perf_counter()
        result = MultiCycleDetector(circuit, options, tracer=tracer).run()
        seconds = time.perf_counter() - started
        groups = max(
            (e["groups_total"] for e in tracer.select("launch_group")),
            default=0,
        )
        queues = tracer.select("decision_queue")
        if queues:
            queue_summary = {
                key: queues[-1][key]
                for key in ("workers", "units", "unit_pairs", "split",
                            "per_worker")
                if key in queues[-1]
            }
        return result, seconds

    if args.trace:
        with open(args.trace, "w", encoding="utf-8") as fh:
            result, seconds = run(Tracer(sink=fh, keep=True))
    else:
        result, seconds = run(Tracer())

    report = {
        "circuit": circuit.name,
        "num_nodes": circuit.num_nodes,
        "num_gates": circuit.num_gates,
        "num_dffs": len(circuit.dffs),
        "connected_pairs": result.connected_pairs,
        "multi_cycle": len(result.multi_cycle_pairs),
        "single_cycle": len(result.single_cycle_pairs),
        "undecided": len(result.undecided_pairs),
        "sim_dropped": result.stats[Stage.SIMULATION].single_cycle,
        "groups": groups,
        "streaming": args.streaming,
        "packed_implication": args.packed_implication,
        "workers": args.workers,
        "wall_seconds": round(seconds, 3),
        "peak_rss_bytes": peak_rss_bytes(),
        "rss_limit_mb": args.rss_limit_mb,
    }
    if args.workers > 1:
        # ru_maxrss(RUSAGE_CHILDREN) is the largest peak among reaped
        # workers; parent + workers * that bounds the aggregate fleet
        # footprint from above (shared backplane pages are counted once
        # per process that touched them, so this is conservative).
        child_peak = children_peak_rss_bytes()
        report["children_peak_rss_bytes"] = child_peak
        report["aggregate_peak_rss_bytes"] = (
            report["peak_rss_bytes"] + args.workers * child_peak
        )
    if result.backplane is not None:
        report["backplane"] = result.backplane
        report["worker_spawn_seconds"] = result.backplane[
            "spawn_seconds_max"
        ]
    if result.cache is not None:
        report["cache"] = result.cache
    if queue_summary is not None:
        report["decision_queue"] = queue_summary
    json.dump(report, sys.stdout)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
