"""Experiment X3 — the Condition-2 extension (paper §3.1, skipped there).

Measures the one-step observability-based approximation of Condition 2:
pairs the MC condition rejects but whose sink transition can never reach a
primary output (SAT miter proof) while every successor pair is itself
multi-cycle.  Reported per circuit: base MC pairs, upgraded pairs, total.
"""

from __future__ import annotations

import pytest

from repro.core.detector import detect_multi_cycle_pairs
from repro.core.extended import condition2_extension
from repro.reporting.tables import format_table

from conftest import PROFILE, record_report
from repro.bench_gen.suite import suite

_CIRCUITS = suite(PROFILE)
_IDS = [c.name for c in _CIRCUITS]


@pytest.mark.parametrize("circuit", _CIRCUITS[:4], ids=_IDS[:4])
def test_condition2_cost(benchmark, circuit):
    detection = detect_multi_cycle_pairs(circuit)
    extended = benchmark(condition2_extension, circuit, detection)
    assert extended.total_multi_cycle >= len(detection.multi_cycle_pairs)


def test_condition2_report(benchmark, bench_circuits):
    def run_all():
        rows = []
        for circuit in bench_circuits:
            detection = detect_multi_cycle_pairs(circuit)
            extended = condition2_extension(circuit, detection)
            rows.append([
                circuit.name,
                len(detection.multi_cycle_pairs),
                len(extended.upgraded_pairs),
                extended.total_multi_cycle,
                extended.total_seconds,
            ])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    record_report(format_table(
        "X3: Condition-2 extension (one-step observability approximation)",
        ["circuit", "MC (cond. 1)", "upgraded", "total", "CPU(s)"],
        rows,
        ["Upgrades are pairs whose sink is PO-invisible with only "
         "multi-cycle successors."],
    ))
