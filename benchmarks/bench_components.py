"""Micro-benchmarks of the substrates (solver, BDDs, simulators, engine).

Not a paper table — these keep the building blocks honest so regressions
in the core pipeline can be attributed: CDCL propagation throughput, BDD
construction, bit-parallel simulation rate, implication fixpoint cost and
the justification search.
"""

from __future__ import annotations

import random

import numpy as np

from repro.bdd.bdd import BddManager
from repro.bdd.traversal import build_node_bdds
from repro.circuit.library import fig1_circuit
from repro.circuit.timeframe import expand
from repro.logic.bitsim import BitSimulator
from repro.atpg.implication import ImplicationEngine
from repro.atpg.justify import justify
from repro.atpg.learning import learn_static_implications
from repro.sat.solver import CdclSolver, SolveStatus
from repro.sat.tseitin import encode_circuit

from conftest import PROFILE
from repro.bench_gen.suite import suite

_CIRCUIT = suite(PROFILE)[-1]


def test_bitsim_throughput(benchmark):
    sim = BitSimulator(_CIRCUIT, words=8)
    rng = np.random.default_rng(0)
    sim.randomize_sources(rng)

    def one_round():
        sim.comb_eval()
        sim.clock()

    benchmark(one_round)


def test_implication_fixpoint(benchmark):
    expansion = expand(_CIRCUIT, 2)
    engine = ImplicationEngine(expansion.comb)
    dffs = _CIRCUIT.dffs
    i = expansion.ff_index(dffs[0])

    def one_run():
        mark = engine.checkpoint()
        engine.assume_all([
            (expansion.ff_at[0][i], 0),
            (expansion.ff_at[1][i], 1),
        ])
        engine.backtrack(mark)

    benchmark(one_run)


def test_justification_search(benchmark):
    expansion = expand(fig1_circuit(), 2)
    engine = ImplicationEngine(expansion.comb)
    target = expansion.ff_at[2][1]  # FF2(t+2)

    def search():
        mark = engine.checkpoint()
        if engine.assume(target, 1):
            justify(engine, backtrack_limit=1000)
        engine.backtrack(mark)

    benchmark(search)


def test_static_learning_cost(benchmark):
    expansion = expand(fig1_circuit(), 2)
    learned = benchmark(learn_static_implications, expansion.comb)
    assert isinstance(learned, dict)


def test_cdcl_random3sat(benchmark):
    rng = random.Random(7)
    num_vars = 60
    clauses = [
        [rng.choice([1, -1]) * rng.randint(1, num_vars) for _ in range(3)]
        for _ in range(240)
    ]

    def solve_fresh():
        solver = CdclSolver()
        for clause in clauses:
            solver.add_clause(clause)
        return solver.solve()

    status = benchmark(solve_fresh)
    assert status in (SolveStatus.SAT, SolveStatus.UNSAT)


def test_tseitin_encoding_cost(benchmark):
    expansion = expand(_CIRCUIT, 2)
    encoding = benchmark(encode_circuit, expansion.comb)
    assert encoding.solver.num_vars >= expansion.comb.num_nodes


def test_bdd_build_cost(benchmark):
    circuit = fig1_circuit()
    expansion = expand(circuit, 2)

    def build():
        manager = BddManager()
        var_of = {}
        index = 0
        for node in expansion.ff_at[0]:
            var_of[node] = index
            index += 1
        for frame in expansion.pi_at:
            for node in frame:
                var_of[node] = index
                index += 1
        return build_node_bdds(expansion.comb, manager, var_of)

    bdds = benchmark(build)
    assert len(bdds) == expansion.comb.num_nodes


def test_stuckat_atpg_cost(benchmark):
    """Full-scan stuck-at ATPG over every fault of fig1 (miter flow)."""
    from repro.atpg.stuckat import run_atpg

    circuit = fig1_circuit()
    report = benchmark(run_atpg, circuit)
    assert report.coverage == 1.0


def test_fault_dropping_cost(benchmark):
    """Generate-and-drop flow: far fewer generator calls per fault."""
    from repro.atpg.faultsim import DroppingAtpg

    circuit = fig1_circuit()
    result = benchmark(lambda: DroppingAtpg(circuit).run())
    assert len(result.patterns) < len(result.report.detected)


def test_scoap_cost(benchmark):
    from repro.atpg.scoap import compute_scoap

    scoap = benchmark(compute_scoap, _CIRCUIT)
    assert len(scoap.cc0) == _CIRCUIT.num_nodes
