"""Experiment X1 — the k-cycle extension (end of paper §4.1).

Times k-cycle classification for growing k (each k adds a time frame) and
regenerates the Fig. 1 cycle-budget story plus a budget histogram over the
suite's smaller circuits.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.circuit.library import fig1_circuit
from repro.circuit.topology import FFPair, connected_ff_pairs
from repro.core.kcycle import KCycleAnalyzer, max_cycles
from repro.reporting.tables import format_table

from conftest import record_report
from repro.bench_gen.suite import suite


@pytest.mark.parametrize("k", [2, 3, 4, 5])
def test_kcycle_analysis_cost(benchmark, k):
    """Cost per k on Fig. 1 — each k adds one expanded time frame."""
    circuit = fig1_circuit()
    pairs = connected_ff_pairs(circuit)

    def classify_all():
        analyzer = KCycleAnalyzer(circuit, k)
        return [analyzer.analyze(pair) for pair in pairs]

    results = benchmark(classify_all)
    assert len(results) == len(pairs)


def test_fig1_budgets(benchmark):
    circuit = fig1_circuit()
    pair = FFPair(circuit.id_of("FF1"), circuit.id_of("FF2"))
    budget = benchmark(max_cycles, circuit, pair)
    assert budget == 3  # the paper's 3-cycle claim


def test_kcycle_histogram_report(benchmark):
    """Cycle-budget distribution over the smallest suite circuits."""
    def build_histogram():
        histogram: Counter[int] = Counter()
        for circuit in suite("tiny")[:3]:
            for pair in connected_ff_pairs(circuit):
                histogram[max_cycles(circuit, pair, k_max=5)] += 1
        return histogram

    histogram = benchmark.pedantic(build_histogram, rounds=1, iterations=1)
    rows = [[f"{k}-cycle", histogram[k]] for k in sorted(histogram)]
    record_report(format_table(
        "X1: cycle-budget histogram (tiny circuits, k_max=5)",
        ["budget", "FF pairs"],
        rows,
        ["budget 1 = single-cycle; budget k = stable through t+k."],
    ))
    assert histogram[1] > 0  # single-cycle pairs exist
    assert sum(count for k, count in histogram.items() if k >= 2) > 0
