"""Ablation A2 — D-algorithm-style vs PODEM-style backtrack search (§4.5).

The paper chose a D-algorithm flavour "because it assigns values to
internal nodes directly and tries to detect contradictions faster than
[a] PODEM based method" on the mostly-redundant targets of the MC check.
Both engines are implemented here; this module verifies they classify
every pair identically and measures the cost difference the paper's
choice is based on.
"""

from __future__ import annotations

import pytest

from repro.core.detector import DetectorOptions, detect_multi_cycle_pairs
from repro.reporting.tables import format_table

from conftest import PROFILE, record_report
from repro.bench_gen.suite import suite

_CIRCUITS = suite(PROFILE)
_IDS = [c.name for c in _CIRCUITS]
_ENGINES = ("dalg", "podem")


@pytest.mark.parametrize("engine", _ENGINES)
def test_search_engine_cost(benchmark, engine):
    circuit = _CIRCUITS[-1]
    options = DetectorOptions(search_engine=engine, use_random_sim=False,
                              backtrack_limit=10_000)
    result = benchmark(detect_multi_cycle_pairs, circuit, options)
    assert result.connected_pairs > 0


def test_engines_agree_and_report(benchmark, bench_circuits):
    def run_all():
        rows = []
        for circuit in bench_circuits:
            verdicts = {}
            for engine in _ENGINES:
                options = DetectorOptions(
                    search_engine=engine, use_random_sim=False,
                    backtrack_limit=10_000,
                )
                verdicts[engine] = detect_multi_cycle_pairs(circuit, options)
            assert (verdicts["dalg"].multi_cycle_pair_names()
                    == verdicts["podem"].multi_cycle_pair_names()), (
                f"engines disagree on {circuit.name}"
            )
            rows.append([
                circuit.name,
                len(verdicts["dalg"].multi_cycle_pairs),
                verdicts["dalg"].total_seconds,
                verdicts["podem"].total_seconds,
            ])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    record_report(format_table(
        "Ablation A2: D-algorithm vs PODEM search (random sim disabled)",
        ["circuit", "MC-pair", "dalg (s)", "podem (s)"],
        rows,
        ["Identical verdicts; only the exploration cost differs (§4.5)."],
    ))


@pytest.mark.parametrize("guided", [False, True], ids=["plain", "scoap"])
def test_scoap_guidance_cost(benchmark, guided):
    """SCOAP-ordered decisions vs declaration order (verdict-invariant)."""
    circuit = _CIRCUITS[-1]
    options = DetectorOptions(use_random_sim=False, scoap_guidance=guided,
                              backtrack_limit=10_000)
    result = benchmark(detect_multi_cycle_pairs, circuit, options)
    assert result.connected_pairs > 0
