#!/usr/bin/env python3
"""Generate the synthetic benchmark suite as ISCAS89-style .bench files.

Writes every circuit of the chosen profile to a directory, prints the
Table-1-style size columns (inputs / FFs / gates / connected FF pairs),
and round-trips one file through the parser as a self-check.  The files
are plain ``.bench`` netlists usable by any ISCAS89-compatible tool.

Usage::

    python examples/generate_suite.py OUT_DIR [--profile small]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.bench_gen.suite import suite
from repro.circuit.bench import dump, load
from repro.circuit.topology import connected_ff_pairs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("out_dir")
    parser.add_argument("--profile", default="small",
                        choices=("tiny", "small", "medium", "large", "full"))
    args = parser.parse_args()

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    print(f"{'circuit':>8}  {'In':>4}  {'FF':>5}  {'gates':>6}  {'FF-pair':>8}")
    for circuit in suite(args.profile):
        stats = circuit.stats()
        pairs = len(connected_ff_pairs(circuit))
        path = out_dir / f"{circuit.name}.bench"
        dump(circuit, path)
        print(f"{circuit.name:>8}  {stats['inputs']:>4}  {stats['dffs']:>5}  "
              f"{stats['gates']:>6}  {pairs:>8}")

    # Self-check: the last file parses back to the same shape.
    restored = load(path)
    assert restored.stats() == circuit.stats()
    print(f"\nWrote {args.profile!r} profile to {out_dir}/ "
          "(round-trip check passed).")


if __name__ == "__main__":
    main()
