module fig1 (IN, FF2);
  input IN;
  output FF2;
  wire FF1, FF3, FF4, FF3_next, FF4_next, nFF3, nFF4, EN1, EN2, MUX1, MUX2;

  dff u0 (FF1, MUX1);
  dff u1 (FF2, MUX2);
  dff u2 (FF3, FF3_next);
  dff u3 (FF4, FF4_next);
  buf u4 (FF3_next, FF4);
  not u5 (FF4_next, FF3);
  not u6 (nFF3, FF3);
  not u7 (nFF4, FF4);
  and u8 (EN1, nFF3, nFF4);
  and u9 (EN2, FF3, nFF4);
  mux u10 (MUX1, EN1, FF1, IN);
  mux u11 (MUX2, EN2, FF2, FF1);
endmodule
