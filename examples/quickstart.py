#!/usr/bin/env python3
"""Quickstart: detect the multi-cycle FF pairs of the paper's Fig. 1.

Builds the running example of Higuchi's DAC 2002 paper — a Gray-code
counter whose decoded states gate a MUX-loaded register chain — and walks
the full detection pipeline on it, printing the same narrative as the
paper's Section 4.2:

* 16 FF pairs, of which 9 are topologically connected,
* random-pattern simulation drops 4 single-cycle pairs,
* the implication procedure proves the remaining 5 multi-cycle.

Run with ``--explain`` to additionally print the Fig. 2 implication trace.

Usage::

    python examples/quickstart.py [--explain]
"""

from __future__ import annotations

import argparse

from repro import DetectorOptions, MultiCycleDetector, Stage
from repro.circuit.library import fig1_circuit
from repro.circuit.timeframe import expand
from repro.atpg.implication import ImplicationEngine
from repro.logic.values import ONE, ZERO, to_char


def explain_fig2(circuit) -> None:
    """Replay the paper's Fig. 2: the implication run for (FF1, FF2)."""
    print("\n=== Fig. 2 walkthrough: implication for pair (FF1, FF2) ===")
    print("Assume a rise at FF1 (FF1(t)=0, FF1(t+1)=1) and FF2(t+1)=0.\n")
    expansion = expand(circuit, frames=2)
    engine = ImplicationEngine(expansion.comb)
    i = expansion.ff_index(circuit.id_of("FF1"))
    j = expansion.ff_index(circuit.id_of("FF2"))
    assumed = [
        (expansion.ff_at[0][i], ZERO),
        (expansion.ff_at[1][i], ONE),
        (expansion.ff_at[1][j], ZERO),
    ]
    ok = engine.assume_all(assumed)
    assert ok, "the premise is consistent"
    assumed_nodes = {node for node, _ in assumed}
    print(f"{'node':>12}  value  origin")
    for name, value in sorted(engine.snapshot().items()):
        node = expansion.comb.id_of(name)
        origin = "assumed" if node in assumed_nodes else "implied"
        print(f"{name:>12}  {to_char(value):>5}  {origin}")
    ffj_t2 = expansion.ff_at[2][j]
    print(
        f"\nImplication derived FF2(t+2) = "
        f"{to_char(engine.value(ffj_t2))} = FF2(t+1): the MC condition "
        "holds for this case without any search."
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--explain", action="store_true",
                        help="print the Fig. 2 implication trace")
    args = parser.parse_args()

    circuit = fig1_circuit()
    print(f"Circuit: {circuit!r}")
    print(f"All FF pairs: {len(circuit.dffs) ** 2}")

    result = MultiCycleDetector(circuit, DetectorOptions()).run()
    print(f"Topologically connected pairs: {result.connected_pairs}")
    sim_drops = result.stats[Stage.SIMULATION].single_cycle
    print(f"Dropped by random simulation:  {sim_drops}")
    print(f"Multi-cycle pairs:             {len(result.multi_cycle_pairs)}")
    for source, sink in result.multi_cycle_pair_names():
        print(f"  {source} -> {sink}")
    impl = result.stats[Stage.IMPLICATION]
    atpg = result.stats[Stage.ATPG]
    print(f"Settled by implication alone:  {impl.multi_cycle} multi-cycle")
    print(f"Needed the backtrack search:   {atpg.multi_cycle} multi-cycle")
    print(f"Total CPU: {result.total_seconds:.3f}s")

    if args.explain:
        explain_fig2(circuit)


if __name__ == "__main__":
    main()
