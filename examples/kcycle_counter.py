#!/usr/bin/env python3
"""k-cycle analysis: how many clock periods does each FF pair really get?

The paper notes (§4.1) that the detector "can be easily extended to detect
k-cycle FF pairs by increasing the number of time frames".  This example
exercises that extension:

* On Fig. 1 it shows (FF1, FF2) is a 3-cycle pair but not a 4-cycle pair —
  the Gray counter needs exactly three clocks from the launch-enable state
  (0,0) to the capture-enable state (1,0).
* On parametric enable-gated pipelines it shows the cycle budget tracks
  the decode spacing of the stage enables.

Usage::

    python examples/kcycle_counter.py
"""

from __future__ import annotations

from repro import connected_ff_pairs, is_k_cycle_pair, max_cycles
from repro.circuit.library import enabled_pipeline, fig1_circuit
from repro.circuit.topology import FFPair


def main() -> None:
    circuit = fig1_circuit()
    pair = FFPair(circuit.id_of("FF1"), circuit.id_of("FF2"))
    print("=== Fig. 1: the 3-cycle pair (FF1, FF2) ===")
    for k in (2, 3, 4):
        verdict = is_k_cycle_pair(circuit, pair, k)
        print(f"  {k}-cycle condition: {'holds' if verdict else 'violated'}")
    print(f"  maximum cycle budget: {max_cycles(circuit, pair)}")

    print("\n=== Cycle budget per pair on Fig. 1 ===")
    for pair in connected_ff_pairs(circuit):
        budget = max_cycles(circuit, pair, k_max=5)
        names = (circuit.names[pair.source], circuit.names[pair.sink])
        print(f"  {names[0]:>4} -> {names[1]:<4} : {budget} cycle(s)")

    print("\n=== Enable spacing sets the budget in pipelines ===")
    for spacing in (1, 2, 3):
        pipeline = enabled_pipeline(
            2, counter_width=2, spacing=spacing, name=f"pipe_s{spacing}"
        )
        pair = FFPair(pipeline.id_of("r0"), pipeline.id_of("r1"))
        budget = max_cycles(pipeline, pair, k_max=6)
        print(f"  decode spacing {spacing}: (r0, r1) is a "
              f"{budget}-cycle pair")


if __name__ == "__main__":
    main()
