#!/usr/bin/env python3
"""Three detectors, one answer: implication vs SAT vs BDD.

Runs the implication-based detector, the conventional SAT-based method
([9], fresh CNF per pair), the incremental SAT variant and the symbolic
BDD-based method ([8]) on the same circuits, verifying they agree on
every multi-cycle pair while their runtimes diverge — the shape of the
paper's Table 1.

Usage::

    python examples/baseline_comparison.py [--profile tiny|small]
"""

from __future__ import annotations

import argparse

from repro import detect_multi_cycle_pairs
from repro.bdd.traversal import bdd_detect_multi_cycle_pairs, BddLimitExceeded
from repro.bench_gen.suite import suite
from repro.sat.mc_sat import sat_detect_multi_cycle_pairs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="tiny",
                        choices=("tiny", "small", "medium"))
    args = parser.parse_args()

    header = (f"{'circuit':>8}  {'mc':>5}  {'ours(s)':>8}  "
              f"{'sat[9](s)':>9}  {'sat-inc(s)':>10}  {'bdd[8](s)':>9}  agree")
    print(header)
    print("-" * len(header))
    for circuit in suite(args.profile):
        ours = detect_multi_cycle_pairs(circuit)
        reference = ours.multi_cycle_pair_names()

        per_pair = sat_detect_multi_cycle_pairs(circuit, mode="per-pair")
        incremental = sat_detect_multi_cycle_pairs(circuit, mode="incremental")
        agree = (per_pair.multi_cycle_pair_names() == reference
                 and incremental.multi_cycle_pair_names() == reference)
        try:
            bdd = bdd_detect_multi_cycle_pairs(circuit)
            bdd_seconds = f"{bdd.total_seconds:9.2f}"
            agree = agree and bdd.multi_cycle_pair_names() == reference
        except BddLimitExceeded:
            bdd_seconds = "  blew up"

        print(
            f"{circuit.name:>8}  {len(reference):>5}  "
            f"{ours.total_seconds:>8.2f}  {per_pair.total_seconds:>9.2f}  "
            f"{incremental.total_seconds:>10.2f}  {bdd_seconds}  "
            f"{'yes' if agree else 'NO'}"
        )
        assert agree, f"methods disagree on {circuit.name}"

    print(
        "\nAll methods agree on every pair; the implication-based method's"
        "\nadvantage over the per-pair SAT formulation grows with size,"
        "\nreproducing the shape of the paper's Table 1."
    )


if __name__ == "__main__":
    main()
