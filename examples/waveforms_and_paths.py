#!/usr/bin/env python3
"""Waveforms and per-path analysis of the Fig. 1 multi-cycle transport.

Two complementary views of why (FF1, FF2) is a 3-cycle pair:

1. **Waveforms** — simulate the launch/capture sequence and render the
   signals as ASCII waves (and optionally a standard VCD file for
   GTKWave): IN is loaded into FF1 at counter state (0,0) and appears in
   FF2 exactly three edges later.
2. **Paths** — enumerate the concrete combinational paths of several FF
   pairs, classify each against the §2.3 sensitization conditions
   (statically sensitizable / co-sensitizable only / false) and report
   their topological delays.

Usage::

    python examples/waveforms_and_paths.py [--vcd OUT.vcd]
"""

from __future__ import annotations

import argparse

from repro.circuit.library import fig1_circuit
from repro.circuit.paths import path_delay, paths_between
from repro.circuit.topology import FFPair, connected_ff_pairs
from repro.core.falsepath import classify_pair_paths
from repro.logic.vcd import trace_circuit
from repro.logic.values import X


def ascii_wave(values: list[int]) -> str:
    """Render a bit stream as a compact two-state ASCII wave."""
    glyphs = {0: "_", 1: "#", X: "?"}
    return "".join(glyphs[v] * 3 for v in values)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vcd", help="also write a VCD file to this path")
    args = parser.parse_args()

    circuit = fig1_circuit()
    signals = ["IN", "EN1", "EN2", "FF1", "FF2", "FF3", "FF4"]
    tracer = trace_circuit(
        circuit,
        cycles=8,
        initial_state=[0, 0, 0, 0],
        inputs_per_cycle=[{"IN": 1}] + [{"IN": 0}] * 7,
        signals=signals,
    )
    print("=== Fig. 1 launch/capture waveforms (IN pulsed at cycle 0) ===")
    for index, name in enumerate(tracer.signals):
        stream = [sample[index] for sample in tracer.samples]
        print(f"{name:>4} {ascii_wave(stream)}")
    print("      " + "".join(f"{c:<3d}" for c in range(len(tracer.samples))))
    print("FF1 rises at edge 1 (EN1 active at counter (0,0)); FF2 rises at"
          "\nedge 4 — three cycles later, when EN2 decodes (1,0).")
    if args.vcd:
        tracer.write(args.vcd)
        print(f"wrote {args.vcd}")

    print("\n=== Concrete paths of selected FF pairs ===")
    for source, sink in (("FF1", "FF2"), ("FF3", "FF2"), ("FF4", "FF1")):
        pair = FFPair(circuit.id_of(source), circuit.id_of(sink))
        verdicts = classify_pair_paths(circuit, pair)
        print(f"\n{source} -> {sink}: {len(verdicts)} path(s)")
        for verdict in verdicts:
            names = " -> ".join(circuit.names[n] for n in verdict.path.nodes)
            delay = path_delay(circuit, verdict.path)
            print(f"  [{verdict.classification.value:24s}] "
                  f"delay={delay:.0f}  {names}")
    print(
        "\nEvery enumerated path above feeds the pair-level verdicts: the"
        "\ndetector never enumerates them (that is the paper's point), but"
        "\nthe per-path view explains what the relaxation buys."
    )


if __name__ == "__main__":
    main()
