#!/usr/bin/env python3
"""Stuck-at ATPG on the same engine that powers multi-cycle detection.

The paper's method "is based on ATPG techniques"; this example turns the
machinery around and runs the classic ATPG workload — single stuck-at
fault test generation under the full-scan assumption — over the built-in
circuits, reporting fault coverage, redundant faults and the generated
pattern count. The same implication engine and justification search
decide both problems; redundant faults are exactly the UNSAT regime the
paper's §4.5 design discussion is about.

Usage::

    python examples/fault_atpg.py
"""

from __future__ import annotations

from repro.circuit.library import fig1_circuit, fig3_circuit, s27
from repro.bench_gen.suite import suite
from repro.atpg.stuckat import run_atpg


def main() -> None:
    circuits = [s27(), fig1_circuit(), fig3_circuit()] + [
        c for c in suite("tiny") if c.name.startswith("syn")
    ][:2]
    header = (f"{'circuit':>8}  {'faults':>6}  {'detected':>8}  "
              f"{'redundant':>9}  {'aborted':>7}  {'coverage':>8}  {'CPU(s)':>7}")
    print(header)
    print("-" * len(header))
    for circuit in circuits:
        report = run_atpg(circuit)
        print(f"{circuit.name:>8}  {len(report.results):>6}  "
              f"{len(report.detected):>8}  {len(report.redundant):>9}  "
              f"{len(report.aborted):>7}  {report.coverage:>8.3f}  "
              f"{report.total_seconds:>7.2f}")

    # Fault-dropping flow: generate one test, fault-simulate it against
    # everything still undetected, repeat — far fewer patterns emerge.
    print("\n=== Fault dropping (generate + bit-parallel fault simulation) ===")
    from repro.atpg.faultsim import DroppingAtpg

    for circuit in circuits[:3]:
        dropping = DroppingAtpg(circuit).run()
        detected = len(dropping.report.detected)
        print(f"{circuit.name:>8}: {detected} faults detected with "
              f"{len(dropping.patterns)} patterns "
              f"(vs {detected} with one-per-fault generation)")

    # Transition (delay) faults: the paper's §1 application of
    # multi-cycle knowledge — faults lying only on multi-cycle paths need
    # at-speed testing only against the relaxed clock.
    print("\n=== Transition faults vs multi-cycle budgets ===")
    from repro.core.detector import detect_multi_cycle_pairs
    from repro.atpg.transition import transition_relaxation_summary

    for circuit in circuits[:3]:
        detection = detect_multi_cycle_pairs(circuit)
        summary = transition_relaxation_summary(circuit, detection)
        print(f"{circuit.name:>8}: {summary.detected}/{summary.total_faults} "
              f"transition faults testable, {summary.relaxed} only on "
              f"multi-cycle paths (relaxed at-speed budget)")

    # Show one concrete test.
    circuit = fig1_circuit()
    from repro.atpg.stuckat import StuckAtAtpg, Fault

    atpg = StuckAtAtpg(circuit)
    fault = Fault(circuit.id_of("EN2"), 1)
    result = atpg.generate_test(fault)
    print(f"\nTest for {fault.name(circuit)} ({result.status.value}):")
    comb = atpg.expansion.comb
    if result.pattern:
        assignment = ", ".join(
            f"{comb.names[node]}={value}"
            for node, value in sorted(result.pattern.items())
        )
        print(f"  {assignment}")
        print("  (state bits are controllable under the full-scan assumption)")


if __name__ == "__main__":
    main()
