#!/usr/bin/env python3
"""Static-hazard validation of multi-cycle pairs (paper Section 5).

Demonstrates the paper's Fig. 3/Fig. 4 story:

1. Technology-map Fig. 1 (each MUX becomes NOT/AND/AND/OR — Fig. 3).
2. Detect its multi-cycle FF pairs (functionally identical to Fig. 1).
3. Re-validate each pair against static hazards using
   * static sensitization (optimistic; survivors may depend on each other),
   * static co-sensitization (safe upper bound).
4. Show that the pair (FF3, FF2) — multi-cycle by the MC condition — is
   invalidated: a transition at FF3 can glitch through MUX2's AND/OR
   structure to FF2's data input, so its timing must NOT be relaxed.

Usage::

    python examples/hazard_analysis.py
"""

from __future__ import annotations

from repro import MultiCycleDetector, SensitizationMode, check_hazards
from repro.circuit.library import fig1_circuit, fig3_circuit
from repro.core.hazard import HazardChecker


def main() -> None:
    mapped = fig3_circuit()
    print(f"Technology-mapped circuit: {mapped!r}")

    detection = MultiCycleDetector(mapped).run()
    print(f"\nMulti-cycle pairs by the MC condition: "
          f"{len(detection.multi_cycle_pairs)}")
    for source, sink in detection.multi_cycle_pair_names():
        print(f"  {source} -> {sink}")

    for mode in SensitizationMode:
        result = check_hazards(mapped, detection, mode)
        kept = sorted(
            (mapped.names[p.pair.source], mapped.names[p.pair.sink])
            for p in result.verified_pairs
        )
        print(f"\nAfter the {mode.value} check "
              f"({result.total_seconds:.3f}s): {len(kept)} pair(s) verified")
        for source, sink in kept:
            print(f"  {source} -> {sink}")

    # Zoom in on the paper's example pair.
    print("\n=== The (FF3, FF2) hazard of Fig. 3 ===")
    checker = HazardChecker(mapped, SensitizationMode.STATIC_SENSITIZATION)
    pair_result = next(
        p for p in detection.multi_cycle_pairs
        if (mapped.names[p.pair.source], mapped.names[p.pair.sink])
        == ("FF3", "FF2")
    )
    report = checker.check_pair(pair_result)
    assert report.has_potential_hazard
    a, b = report.witness_case
    print(f"Witness case: FF3(t) = {a}, FF3 toggles, FF2(t+1) = {b}")
    print("Statically sensitizable hazard path into FF2's data input:")
    for node in report.witness_path:
        print(f"  {checker.expansion.comb.names[node]}")
    print(
        "\nIf the OR's other AND is slower, this path glitches FF2 during"
        "\nthe relaxed cycle — the pair must keep its single-cycle budget."
    )

    # Contrast: on the un-mapped Fig. 1 the same pair shows no sensitizable
    # path (the MUX data inputs are equal whenever FF3 toggles) — hazards
    # are a property of the implementation, not the function.
    unmapped = fig1_circuit()
    detection1 = MultiCycleDetector(unmapped).run()
    result1 = check_hazards(unmapped, detection1,
                            SensitizationMode.STATIC_SENSITIZATION)
    flagged = {
        (unmapped.names[p.pair.source], unmapped.names[p.pair.sink])
        for p in result1.flagged_pairs
    }
    print(
        f"\nOn the composite-MUX Fig. 1 the pair (FF3, FF2) is "
        f"{'flagged' if ('FF3', 'FF2') in flagged else 'NOT flagged'} — "
        "the hazard only exists in the mapped structure."
    )


if __name__ == "__main__":
    main()
