#!/usr/bin/env python3
"""Timing relaxation from multi-cycle detection (the paper's motivation).

"False paths and multi-cycle paths relax timing constraints, which can be
utilized in logic synthesis, layout, ATPG for delay faults, and static
timing analysis" (§1).  This example quantifies that on the synthetic
benchmark suite: for each circuit it runs the detector, applies the proven
multi-cycle budgets as timing constraints, and reports

* the minimum feasible clock period before/after relaxation,
* the number of single-cycle-constraint violations the relaxation removes
  at the relaxed period.

Usage::

    python examples/sta_relaxation.py [--profile tiny|small|medium]
"""

from __future__ import annotations

import argparse

from repro import detect_multi_cycle_pairs
from repro.bench_gen.suite import suite
from repro.sta.constraints import relaxation_report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="tiny",
                        choices=("tiny", "small", "medium", "large", "full"))
    args = parser.parse_args()

    header = (f"{'circuit':>8}  {'paths':>6}  {'mc':>5}  "
              f"{'T_base':>7}  {'T_relax':>7}  {'speedup':>7}  {'fixed':>6}")
    print(header)
    print("-" * len(header))
    for circuit in suite(args.profile):
        detection = detect_multi_cycle_pairs(circuit)
        report = relaxation_report(circuit, detection)
        period = report.min_period_relaxed
        fixed = (report.violations_at(period, relaxed=False)
                 - report.violations_at(period, relaxed=True))
        print(
            f"{circuit.name:>8}  {len(report.pair_timings):>6}  "
            f"{len(detection.multi_cycle_pairs):>5}  "
            f"{report.min_period_baseline:>7.2f}  "
            f"{report.min_period_relaxed:>7.2f}  "
            f"{report.speedup:>6.2f}x  {fixed:>6}"
        )
    print(
        "\nT_base: smallest period with every pair single-cycle;"
        "\nT_relax: with detected multi-cycle pairs given 2 periods;"
        "\nfixed: single-cycle violations at T_relax removed by relaxation."
    )


if __name__ == "__main__":
    main()
